"""Unit tests for regions, atoms and constraint conjunctions."""

import pytest

from repro.regions import (
    Constraint,
    HEAP,
    NULL_REGION,
    Outlives,
    PredAtom,
    Region,
    RegionEq,
    RegionNames,
    TRUE,
    outlives,
    req,
)


class TestRegion:
    def test_fresh_regions_are_distinct(self):
        a, b = Region.fresh(), Region.fresh()
        assert a != b
        assert hash(a) != hash(b)

    def test_fresh_many(self):
        rs = Region.fresh_many(5)
        assert len(set(rs)) == 5

    def test_heap_is_distinguished(self):
        assert HEAP.is_heap
        assert not HEAP.is_null
        assert not Region.fresh().is_heap

    def test_null_region_is_distinguished(self):
        assert NULL_REGION.is_null
        assert not NULL_REGION.is_heap

    def test_name_contains_uid(self):
        r = Region.fresh("q")
        assert str(r).startswith("q")

    def test_watermark_orders_creation(self):
        mark = Region.watermark()
        newer = Region.fresh()
        assert newer.uid > mark

    def test_equality_is_by_uid_not_name(self):
        a = Region.fresh("same")
        b = Region.fresh("same")
        assert a != b


class TestAtoms:
    def test_outlives_trivial_reflexive(self):
        r = Region.fresh()
        assert Outlives(r, r).is_trivial()

    def test_outlives_trivial_heap_left(self):
        r = Region.fresh()
        assert Outlives(HEAP, r).is_trivial()
        assert not Outlives(r, HEAP).is_trivial()

    def test_outlives_trivial_null(self):
        r = Region.fresh()
        assert Outlives(r, NULL_REGION).is_trivial()
        assert Outlives(NULL_REGION, r).is_trivial()

    def test_eq_normalized_orders_by_uid(self):
        a, b = Region.fresh(), Region.fresh()
        assert RegionEq(b, a).normalized() == RegionEq(a, b)

    def test_rename(self):
        a, b, c = Region.fresh(), Region.fresh(), Region.fresh()
        atom = Outlives(a, b).rename({a: c})
        assert atom == Outlives(c, b)

    def test_pred_atom_regions(self):
        a, b = Region.fresh(), Region.fresh()
        p = PredAtom("pre.m", (a, b))
        assert p.regions() == frozenset({a, b})

    def test_pred_atom_rename(self):
        a, b, c = Region.fresh(), Region.fresh(), Region.fresh()
        p = PredAtom("pre.m", (a, b)).rename({b: c})
        assert p.args == (a, c)


class TestConstraint:
    def test_true_is_empty(self):
        assert TRUE.is_true
        assert len(TRUE) == 0

    def test_of_drops_trivial_atoms(self):
        r = Region.fresh()
        c = Constraint.of(Outlives(r, r), Outlives(HEAP, r))
        assert c.is_true

    def test_conj(self):
        a, b, c = Region.fresh_many(3)
        combined = outlives(a, b) & outlives(b, c)
        assert len(combined) == 2

    def test_conj_with_true(self):
        a, b = Region.fresh_many(2)
        c = outlives(a, b)
        assert (c & TRUE) == c
        assert (TRUE & c) == c

    def test_regions(self):
        a, b, c = Region.fresh_many(3)
        combined = outlives(a, b) & req(b, c)
        assert combined.regions() == frozenset({a, b, c})

    def test_rename_renormalises(self):
        a, b = Region.fresh_many(2)
        c = outlives(a, b).rename({a: b})
        assert c.is_true  # b >= b dropped

    def test_pred_atoms_separated(self):
        a, b = Region.fresh_many(2)
        c = outlives(a, b).with_atoms(PredAtom("p", (a,)))
        assert len(c.pred_atoms()) == 1
        assert len(c.base_atoms()) == 1

    def test_without_preds(self):
        a = Region.fresh()
        c = Constraint.of(PredAtom("p", (a,)), PredAtom("q", (a,)))
        assert c.without_preds(["p"]).pred_atoms()[0].name == "q"

    def test_str_true(self):
        assert str(TRUE) == "true"

    def test_sorted_atoms_deterministic(self):
        a, b, c = Region.fresh_many(3)
        c1 = Constraint.of(Outlives(a, b), Outlives(b, c), RegionEq(a, c))
        c2 = Constraint.of(RegionEq(a, c), Outlives(b, c), Outlives(a, b))
        assert c1.sorted_atoms() == c2.sorted_atoms()

    def test_all_combines(self):
        a, b, c = Region.fresh_many(3)
        combined = Constraint.all([outlives(a, b), outlives(b, c), TRUE])
        assert len(combined) == 2


class TestRegionNames:
    def test_renumbers_in_first_use_order(self):
        names = RegionNames()
        a, b = Region.fresh_many(2)
        assert names.name(b) == "r1"
        assert names.name(a) == "r2"
        assert names.name(b) == "r1"  # stable

    def test_heap_keeps_its_name(self):
        names = RegionNames()
        assert names.name(HEAP) == "heap"
