"""Checkpoint/rollback (atom retraction) tests for the region solver.

The journal must restore *everything* observable -- union-find classes,
edge mirrors, closure flag and the live reachability bitsets -- across
arbitrary mixes of edges, unions, cycle collapses, queries and cache
rebuilds inside the checkpoint window.  A copy taken at checkpoint time
is the oracle throughout.
"""

import random

import pytest

import repro.regions.solver as solver_mod
from repro.regions import (
    Constraint,
    HEAP,
    Outlives,
    Region,
    RegionSolver,
    outlives,
    req,
)


def observable_state(solver, regions):
    """Everything a client can see, as comparable data."""
    ents = tuple(
        solver.entails_outlives(a, b) for a in regions for b in regions
    )
    eqs = tuple(
        solver.same_region(a, b) for a in regions for b in regions
    )
    proj = solver.project(list(regions))
    return ents, eqs, frozenset(proj.atoms)


class TestCheckpointBasics:
    def test_rollback_retracts_an_edge(self):
        a, b = Region.fresh_many(2)
        solver = RegionSolver()
        cp = solver.checkpoint()
        solver.add_outlives(a, b)
        assert solver.entails_outlives(a, b)
        cp.rollback()
        assert not solver.entails_outlives(a, b)
        assert solver.stats.retractions == 1

    def test_rollback_retracts_a_union(self):
        a, b = Region.fresh_many(2)
        solver = RegionSolver()
        with solver.checkpoint():
            solver.add_eq(a, b)
            assert solver.same_region(a, b)
        assert not solver.same_region(a, b)

    def test_commit_keeps_mutations(self):
        a, b = Region.fresh_many(2)
        solver = RegionSolver()
        cp = solver.checkpoint()
        solver.add_outlives(a, b)
        cp.commit()
        assert solver.entails_outlives(a, b)
        assert solver.stats.retractions == 0
        assert not cp.active

    def test_nested_checkpoints_roll_back_independently(self):
        a, b, c = Region.fresh_many(3)
        solver = RegionSolver()
        outer = solver.checkpoint()
        solver.add_outlives(a, b)
        inner = solver.checkpoint()
        solver.add_outlives(b, c)
        assert solver.entails_outlives(a, c)
        inner.rollback()
        assert solver.entails_outlives(a, b)
        assert not solver.entails_outlives(b, c)
        outer.rollback()
        assert not solver.entails_outlives(a, b)

    def test_releasing_outer_deactivates_inner(self):
        a, b = Region.fresh_many(2)
        solver = RegionSolver()
        outer = solver.checkpoint()
        inner = solver.checkpoint()
        solver.add_outlives(a, b)
        outer.rollback()
        assert not inner.active
        assert not solver.entails_outlives(a, b)
        # a released checkpoint is inert
        inner.rollback()
        assert solver.stats.retractions == 1

    def test_rollback_is_idempotent(self):
        solver = RegionSolver()
        cp = solver.checkpoint()
        solver.add_outlives(*Region.fresh_many(2))
        cp.rollback()
        cp.rollback()
        assert solver.stats.retractions == 1

    def test_context_manager_rolls_back_on_exception(self):
        a, b = Region.fresh_many(2)
        solver = RegionSolver()
        with pytest.raises(RuntimeError):
            with solver.checkpoint():
                solver.add_outlives(a, b)
                raise RuntimeError("boom")
        assert not solver.entails_outlives(a, b)


class TestCheckpointWithLiveCache:
    def test_rollback_keeps_warm_cache_usable(self):
        a, b, c = Region.fresh_many(3)
        solver = RegionSolver(outlives(a, b)).warm()
        rebuilds = solver.stats.full_rebuilds
        with solver.checkpoint():
            solver.add_outlives(b, c)
            assert solver.entails_outlives(a, c)
        assert not solver.entails_outlives(a, c)
        assert solver.entails_outlives(a, b)
        # the retraction restored the bitsets in place: no rebuild needed
        assert solver.stats.full_rebuilds == rebuilds

    def test_rollback_across_cycle_fallback_and_rebuild(self):
        # adding an edge that closes a cycle sheds the cache; a query
        # inside the window rebuilds it; rollback must restore the
        # pre-checkpoint cache and the collapsed classes must separate
        a, b, c = Region.fresh_many(3)
        solver = RegionSolver(outlives(a, b) & outlives(b, c)).warm()
        before = observable_state(solver, (a, b, c))
        with solver.checkpoint():
            solver.add_outlives(c, a)  # closes the cycle a>=b>=c>=a
            assert solver.same_region(a, c)  # forces re-close + rebuild
            assert solver.same_region(b, c)
        assert observable_state(solver, (a, b, c)) == before
        assert not solver.same_region(a, c)

    def test_rollback_across_heap_union(self):
        a, b = Region.fresh_many(2)
        solver = RegionSolver(outlives(a, b)).warm()
        before = observable_state(solver, (a, b, HEAP))
        with solver.checkpoint():
            solver.add_outlives(b, HEAP)
            assert solver.same_region(b, HEAP)
            assert solver.same_region(a, HEAP)
        assert observable_state(solver, (a, b, HEAP)) == before

    def test_queries_inside_window_see_trial_atoms_only(self):
        a, b, c, d = Region.fresh_many(4)
        solver = RegionSolver(outlives(a, b)).warm()
        with solver.checkpoint():
            solver.add_outlives(b, c)
            solver.add_eq(c, d)
            assert solver.entails_outlives(a, d)
            assert solver.project([a, d]).atoms == outlives(a, d).atoms
        assert solver.project([a, d]).is_true


class TestCheckpointDifferential:
    @pytest.mark.parametrize("seed", range(8))
    def test_rollback_matches_copy_oracle(self, seed):
        rng = random.Random(seed)
        regions = Region.fresh_many(12)
        solver = RegionSolver()
        for _ in range(10):
            solver.add_outlives(rng.choice(regions), rng.choice(regions))
        if rng.random() < 0.5:
            solver.warm()
        oracle = solver.copy()
        cp = solver.checkpoint()
        for _ in range(15):
            op = rng.random()
            x, y = rng.choice(regions), rng.choice(regions)
            if op < 0.5:
                solver.add_outlives(x, y)
            elif op < 0.7:
                solver.add_eq(x, y)
            elif op < 0.9:
                solver.entails_outlives(x, y)
            else:
                solver.close()
        cp.rollback()
        assert observable_state(solver, regions) == observable_state(
            oracle, regions
        )
        # and the rolled-back solver is still fully functional
        solver.add_outlives(regions[0], regions[1])
        oracle.add_outlives(regions[0], regions[1])
        assert observable_state(solver, regions) == observable_state(
            oracle, regions
        )


class TestJournalOverflowFallback:
    def test_overflow_sheds_cache_once_but_rollback_stays_exact(
        self, monkeypatch
    ):
        monkeypatch.setattr(solver_mod, "JOURNAL_SOFT_LIMIT", 8)
        regions = Region.fresh_many(20)
        solver = RegionSolver().warm()
        oracle = solver.copy()
        cp = solver.checkpoint()
        for left, right in zip(regions, regions[1:]):
            solver.add_outlives(left, right)
        assert solver.stats.rollback_fallbacks == 1
        assert solver.entails_outlives(regions[0], regions[-1])
        cp.rollback()
        assert observable_state(solver, regions[:6]) == observable_state(
            oracle, regions[:6]
        )


class TestDeferredRebuild:
    def test_long_query_free_burst_sheds_cache(self):
        regions = Region.fresh_many(40)
        solver = RegionSolver(deferred_rebuild_after=10).warm()
        for left, right in zip(regions, regions[1:]):
            solver.add_outlives(left, right)
        assert solver.stats.deferred_rebuilds >= 1
        # mutations after the shed are maintenance-free
        assert solver.stats.incremental_edges <= 11
        # the next query rebuilds once and is correct
        assert solver.entails_outlives(regions[0], regions[-1])

    def test_alternating_workload_never_triggers_heuristic(self):
        regions = Region.fresh_many(30)
        solver = RegionSolver(deferred_rebuild_after=10).warm()
        for left, right in zip(regions, regions[1:]):
            solver.add_outlives(left, right)
            assert solver.entails_outlives(regions[0], right)
        assert solver.stats.deferred_rebuilds == 0
        assert solver.stats.full_rebuilds == 1

    def test_counter_not_bumped_inside_checkpoint_window(self):
        regions = Region.fresh_many(40)
        solver = RegionSolver(deferred_rebuild_after=10).warm()
        with solver.checkpoint():
            for left, right in zip(regions, regions[1:]):
                solver.add_outlives(left, right)
            assert solver.stats.deferred_rebuilds == 0
            assert solver.entails_outlives(regions[0], regions[-1])


class TestTransitiveReductionBitsets:
    def test_chain_reduces_to_cover(self):
        a, b, c = Region.fresh_many(3)
        pairs = {(a, b), (b, c), (a, c)}
        assert solver_mod._transitive_reduction(pairs) == {(a, b), (b, c)}

    def test_diamond_keeps_both_branches(self):
        a, b, c, d = Region.fresh_many(4)
        pairs = {(a, b), (a, c), (b, d), (c, d), (a, d)}
        assert solver_mod._transitive_reduction(pairs) == {
            (a, b),
            (a, c),
            (b, d),
            (c, d),
        }

    def test_empty_and_single(self):
        a, b = Region.fresh_many(2)
        assert solver_mod._transitive_reduction(set()) == set()
        assert solver_mod._transitive_reduction({(a, b)}) == {(a, b)}

    @pytest.mark.parametrize("seed", range(10))
    def test_matches_naive_reference_on_random_closed_dags(self, seed):
        rng = random.Random(seed)
        n = rng.randrange(2, 12)
        regions = Region.fresh_many(n)
        # random DAG over an index order, then transitively close it
        succ = {i: set() for i in range(n)}
        for i in range(n):
            for j in range(i + 1, n):
                if rng.random() < 0.3:
                    succ[i].add(j)
        for i in reversed(range(n)):
            for j in list(succ[i]):
                succ[i] |= succ[j]
        pairs = {
            (regions[i], regions[j]) for i in range(n) for j in succ[i]
        }

        def naive(ps):
            smap = {}
            for x, y in ps:
                smap.setdefault(x, set()).add(y)
            return {
                (x, y)
                for x, y in ps
                if not any(
                    z != x and z != y and y in smap.get(z, ())
                    for z in smap.get(x, ())
                )
            }

        assert solver_mod._transitive_reduction(pairs) == naive(pairs)
