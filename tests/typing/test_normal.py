"""Unit tests for the normal (region-free) type system."""

import pytest

from repro.frontend import parse_program
from repro.lang import ast as S
from repro.typing import NormalTypeError, check_program


def check(src):
    return check_program(parse_program(src))


class TestWellTyped:
    def test_minimal_program(self):
        check("class A { }")

    def test_fields_and_methods(self):
        check(
            """
            class Pair extends Object {
              Object fst;
              Object snd;
              Object getFst() { fst }
              void setSnd(Object o) { snd = o; }
            }
            """
        )

    def test_recursion(self):
        check("int f(int n) { if (n == 0) { 0 } else { f(n - 1) } }")

    def test_subsumption_in_assignment(self):
        check(
            """
            class A { }
            class B extends A { int x; }
            void f() { A a = new B(0); }
            """
        )

    def test_if_msst_merge(self):
        check(
            """
            class A { }
            class B extends A { int x; }
            class C extends A { int y; }
            A pick(bool b) { if (b) { new B(1) } else { new C(2) } }
            """
        )

    def test_downcast_allowed(self):
        check(
            """
            class A { }
            class B extends A { int x; }
            int f(A a) { ((B) a).x }
            """
        )

    def test_null_resolved_from_declaration(self):
        src = "class A { } void f() { A a = null; }"
        program = parse_program(src)
        check_program(program)
        decl = program.statics[0].body.stmts[0]
        assert isinstance(decl.init, S.Null)
        assert decl.init.class_name == "A"

    def test_null_resolved_from_equality(self):
        src = "class A { } bool f(A a) { a == null }"
        program = parse_program(src)
        check_program(program)

    def test_implicit_this_field(self):
        src = """
        class A {
          int x;
          int bump() { x = x + 1; x }
        }
        """
        program = parse_program(src)
        check_program(program)
        # the bare `x` reads became this.x
        body = program.classes[0].methods[0].body
        assert isinstance(body.result, S.FieldRead)

    def test_implicit_this_method_call(self):
        check(
            """
            class A {
              int one() { 1 }
              int two() { one() + one() }
            }
            """
        )

    def test_local_shadows_field(self):
        check(
            """
            class A {
              int x;
              int f() { int x = 5; x }
            }
            """
        )

    def test_void_return_accepts_any_body(self):
        check("class A { } void f() { new A(); }")


class TestIllTyped:
    @pytest.mark.parametrize(
        "src, fragment",
        [
            ("int f() { x }", "unbound"),
            ("int f() { true }", "body has type bool"),
            ("class A { } int f(A a) { a.nope }", "no field"),
            ("class A { } int f(A a) { a.nope() }", "no method"),
            ("class A { } void f() { new A(1); }", "field initialisers"),
            ("int f(int x) { f(x, x) }", "arguments"),
            ("int f(bool b) { b + 1 }", "needs int"),
            ("int f(int x) { x && x }", "needs bool"),
            ("void f() { if (1) { } else { } }", "must be bool"),
            ("void f() { while (1) { } }", "must be bool"),
            ("class A { } class B { } void f(A a) { B b = (B) a; }", "unrelated"),
            ("class A { } bool f(A a, int i) { a == i }", "compare"),
            ("void f() { null; }", "cannot determine the class"),
            ("class A { } void f(Missing m) { }", "unknown class"),
            ("int f(int x, int x) { x }", "duplicate parameter"),
            ("void f() { void v = f(); }", "void"),
            ("class A { } void f(A a) { A x = a = a; }", "has type void"),
        ],
    )
    def test_rejected(self, src, fragment):
        with pytest.raises(NormalTypeError) as exc:
            check(src)
        assert fragment.lower() in str(exc.value).lower()

    def test_assign_subtype_direction(self):
        with pytest.raises(NormalTypeError):
            check(
                """
                class A { }
                class B extends A { int x; }
                void f(A a) { B b = a; }
                """
            )
