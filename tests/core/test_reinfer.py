"""Incremental re-inference: ``reinfer_program`` splices clean SCCs.

The contract under test is the strong one the tentpole promises: for any
edit, the incremental result renders **byte-identical** (under
``pretty_target`` renumbering) to a from-scratch inference of the edited
source, while only the dirty SCCs re-run their fixed points.
"""

import re

import pytest

import random

from repro.bench.composite import (
    COMPOSITE_MEMBERS,
    composite_source,
    rename_local,
    tweak_method_body,
)
from repro.bench.olden import OLDEN_PROGRAMS
from repro.core import InferenceConfig, SubtypingMode, infer_source
from repro.core.infer import reinfer_program
from repro.frontend import parse_program
from repro.lang.pretty import pretty_target


def rendered(result):
    return pretty_target(result.target, renumber=True)


def reinfer(prior, new_source, **kwargs):
    return reinfer_program(parse_program(new_source), prior, **kwargs)


def unique_literals(source, minimum=1000):
    """Integer literals appearing exactly once — safe single-site edits.

    Core-Java fields carry no initialisers, so every literal lives in a
    method (or top-level function) body; tweaking one perturbs exactly
    one method.
    """
    counts = {}
    for m in re.finditer(r"\b\d+\b", source):
        counts[m.group()] = counts.get(m.group(), 0) + 1
    return [
        lit
        for lit, n in counts.items()
        if n == 1 and int(lit) >= minimum
    ]


class TestIdentity(object):
    def test_identical_resubmission_splices_everything(self):
        src = composite_source()
        prior = infer_source(src)
        result = reinfer(prior, src)
        assert result.reinferred_sccs == 0
        assert result.reused_sccs == len(prior.scc_keys)
        assert rendered(result) == rendered(prior)

    def test_whitespace_only_edit_is_clean(self):
        src = composite_source()
        prior = infer_source(src)
        reformatted = src.replace("{", "{\n ").replace(";", " ;")
        result = reinfer(prior, reformatted)
        assert result.reinferred_sccs == 0
        assert rendered(result) == rendered(prior)

    def test_incremental_result_shares_annotation_universe(self):
        src = composite_source()
        prior = infer_source(src)
        result = reinfer(
            prior, tweak_method_body(src, "1103515245", "1103515246")
        )
        # splicing adopts the prior annotation table rather than minting
        # a fresh uid universe — the invariant the SCC cache relies on
        assert result.annotations is prior.annotations


class TestSingleEdit(object):
    def test_body_tweak_reinfers_only_dirty_sccs(self):
        src = composite_source()
        prior = infer_source(src)
        edited = tweak_method_body(src, "1103515245", "1103515246")
        result = reinfer(prior, edited)
        assert result.reinferred_sccs >= 1
        assert result.reused_sccs > result.reinferred_sccs
        assert rendered(result) == rendered(infer_source(edited))

    def test_added_method_is_inferred(self):
        src = composite_source()
        prior = infer_source(src)
        edited = src + "\nint extraHelper(int n) { n + 1 }\n"
        result = reinfer(prior, edited)
        assert "extraHelper" not in result.reused_methods
        assert rendered(result) == rendered(infer_source(edited))

    def test_removed_method_disappears(self):
        src = composite_source()
        grown = src + "\nint extraHelper(int n) { n + 1 }\n"
        prior = infer_source(grown)
        result = reinfer(prior, src)
        assert "extraHelper" not in rendered(result)
        assert rendered(result) == rendered(infer_source(src))


class TestDifferentialSuite(object):
    """Systematic single-site edits, each checked against scratch."""

    @pytest.mark.parametrize("name", ["bisort", "em3d", "health", "power"])
    def test_olden_literal_tweaks(self, name):
        src = OLDEN_PROGRAMS[name].source
        prior = infer_source(src)
        scratch_total = len(prior.scc_keys)
        spliced_any = False
        for lit in unique_literals(src)[:6]:
            edited = tweak_method_body(src, lit, str(int(lit) + 1))
            result = reinfer(prior, edited)
            assert rendered(result) == rendered(infer_source(edited)), (
                f"{name}: tweaking {lit} diverged from scratch"
            )
            if result.reused_sccs:
                spliced_any = True
                assert result.reused_sccs + result.reinferred_sccs >= 1
        assert spliced_any or scratch_total <= 1

    def test_composite_every_literal(self):
        src = composite_source()
        prior = infer_source(src)
        literals = unique_literals(src)
        assert len(literals) >= 3  # the corpus carries distinct seeds
        total_reused = 0
        for lit in literals:
            edited = tweak_method_body(src, lit, str(int(lit) + 1))
            result = reinfer(prior, edited)
            assert rendered(result) == rendered(infer_source(edited)), (
                f"tweaking {lit} diverged from scratch"
            )
            total_reused += result.reused_sccs
        # the composite holds four independent programs: a single-site
        # edit must never dirty the unrelated members
        assert total_reused >= len(literals) * (len(COMPOSITE_MEMBERS) - 1)

    @pytest.mark.parametrize("name", ["treeadd", "bisort", "power", "health"])
    def test_randomized_edits(self, name):
        """Seeded random mix of rename-local and body-tweak edits.

        A rename that happens to hit a field (bare field access makes
        locals and fields textually alike) legitimately forces a full
        rebuild — the contract under test is byte-identity either way.
        """
        rng = random.Random(0x1C47 + len(name))
        src = OLDEN_PROGRAMS[name].source
        prior = infer_source(src)
        idents = sorted(
            set(re.findall(r"\b(?:int|bool)\s+([a-z]\w*)\s*=", src))
        )
        edits = [("rename", i) for i in idents if i + "Qz" not in src]
        edits += [("tweak", lit) for lit in unique_literals(src, minimum=2)]
        rng.shuffle(edits)
        for kind, token in edits[:6]:
            if kind == "rename":
                edited = rename_local(src, token, token + "Qz")
            else:
                edited = tweak_method_body(src, token, str(int(token) + 1))
            result = reinfer(prior, edited)
            assert rendered(result) == rendered(infer_source(edited)), (
                f"{name}: {kind} {token!r} diverged from scratch"
            )


class TestInterfaceRipple(object):
    CALLEE_CHAIN = """
    class Box extends Object { Object payload; }
    void callee(Box b) { %s }
    void caller(Box b) { callee(b); }
    void outer(Box b) { caller(b); }
    """

    def test_callee_pre_change_reinfers_callers(self):
        src = self.CALLEE_CHAIN % ""
        prior = infer_source(src)
        # the edit makes callee write a field, strengthening its pre:
        # both transitive callers must leave the reuse set
        edited = self.CALLEE_CHAIN % "b.payload = new Object();"
        result = reinfer(prior, edited)
        for qn in ("callee", "caller", "outer"):
            assert qn not in result.reused_methods
        assert rendered(result) == rendered(infer_source(edited))

    def test_leaf_edit_spares_callers(self):
        src = """
        class Box extends Object { Object payload; }
        int leaf(int n) { n + 1 }
        int other(int n) { n * 2 }
        int caller(int n) { other(n) }
        """
        prior = infer_source(src)
        edited = src.replace("n + 1", "n + 2")
        result = reinfer(prior, edited)
        assert "leaf" not in result.reused_methods
        assert "caller" in result.reused_methods
        assert "other" in result.reused_methods
        assert rendered(result) == rendered(infer_source(edited))

    def test_override_edit_ripples_through_dynamic_dispatch(self):
        template = """
        class A extends Object { Object x; Object get() { x } }
        class B extends A { Object y; Object get() { %s } }
        Object use(A a) { a.get() }
        """
        src = template % "y"
        prior = infer_source(src)
        # overriding get() to return the inherited field changes the
        # override-resolved invariant; the dispatch site must re-infer
        edited = template % "x"
        result = reinfer(prior, edited)
        assert "B.get" not in result.reused_methods
        assert "use" not in result.reused_methods
        assert rendered(result) == rendered(infer_source(edited))


class TestFullRebuildFallbacks(object):
    def test_config_change_falls_back_to_full(self):
        src = composite_source()
        prior = infer_source(src)
        other = InferenceConfig(mode=SubtypingMode.NONE)
        result = reinfer(prior, src, config=other)
        assert result.reused_sccs == 0
        assert result.annotations is not prior.annotations
        assert rendered(result) == rendered(infer_source(src, other))

    def test_class_field_change_falls_back_to_full(self):
        template = """
        class Box extends Object { Object %s; }
        Object pick(Box b) { b.%s }
        """
        src = template % ("fst", "fst")
        prior = infer_source(src)
        edited = template % ("snd", "snd")
        result = reinfer(prior, edited)
        assert result.reused_sccs == 0
        assert rendered(result) == rendered(infer_source(edited))


class TestSccLookup(object):
    def test_undo_restores_from_content_addressed_entries(self):
        src = composite_source()
        prior = infer_source(src)
        edited = tweak_method_body(src, "1103515245", "1103515246")
        mid = reinfer(prior, edited)
        assert mid.annotations is prior.annotations
        # undo: every SCC of the original is findable by fingerprint in
        # the original result, so nothing re-runs its fixed point
        splices = {}
        for scc, key in prior.scc_keys.items():
            entry = prior.scc_splice(scc)
            if entry is not None:
                splices[key] = entry
        result = reinfer(mid, src, scc_lookup=splices.get)
        assert result.reinferred_sccs == 0
        assert result.reused_sccs == len(prior.scc_keys)
        assert rendered(result) == rendered(prior)
