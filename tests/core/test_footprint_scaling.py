"""Footprint-proportional inference: the cost-model contracts.

Three guarantees pinned here:

* override resolution does O(overrides) total work, not
  O(SCCs x overrides) -- the ``resolution_pairs_checked`` counter on
  :class:`~repro.core.infer.RegionInference` counts ``resolve_pair``
  invocations, and the incremental worklist keeps it proportional to
  the number of override pairs (plus the rare goal strengthenings);
* the per-SCC footprint (:class:`~repro.core.depgraph.SccFootprints`)
  contains exactly what an SCC's inference is entitled to read, and an
  out-of-footprint read raises
  :class:`~repro.regions.abstraction.FootprintViolation`;
* footprint-scoped inference is observably identical to whole-env
  inference (scoping gates reads, it never changes them).
"""

import pytest

from repro.core.depgraph import DependencyGraph, SccFootprints
from repro.core.infer import InferenceConfig, RegionInference, infer_program
from repro.frontend import parse_program
from repro.lang.pretty import pretty_target
from repro.regions.abstraction import (
    AbstractionEnv,
    ConstraintAbstraction,
    FootprintViolation,
    ScopedAbstractionEnv,
)
from repro.regions.constraints import TRUE


def _override_ladder(width, depth):
    """``width`` independent inheritance chains of ``depth`` classes,
    each level overriding ``get`` -- overrides = width * (depth - 1)."""
    out = []
    for w in range(width):
        out.append(
            f"class C{w}_0 extends Object {{\n"
            f"  Object slot;\n"
            f"  Object get() {{ return this.slot; }}\n"
            f"}}\n"
        )
        for d in range(1, depth):
            out.append(
                f"class C{w}_{d} extends C{w}_{d - 1} {{\n"
                f"  Object get() {{ return this.slot; }}\n"
                f"}}\n"
            )
    return "".join(out)


class TestResolutionWorkIsLinearInOverrides:
    def _run(self, src):
        inference = RegionInference(parse_program(src))
        inference.infer()
        return inference

    def test_wide_program_checks_each_pair_a_bounded_number_of_times(self):
        # 12 chains x 4 levels: 36 override pairs, ~60 method SCCs.  The
        # old driver rescanned every pair after every SCC (~2000 checks);
        # the worklist attempts each pair once plus at most one ripple
        # per strengthening along its chain.
        inference = self._run(_override_ladder(12, 4))
        pairs = len(inference.table.override_pairs())
        assert pairs == 36
        assert inference.resolution_pairs_checked <= 2 * pairs
        sccs = sum(
            1 for _ in DependencyGraph(
                inference.program, inference.table
            ).method_sccs()
        )
        # the point of the refactor: total work is decoupled from SCCs
        assert inference.resolution_pairs_checked < sccs * pairs / 4

    def test_override_free_program_never_calls_the_resolver(self):
        src = "".join(
            f"class D{i} extends Object {{ int v; int get() {{ return this.v; }} }}\n"
            for i in range(10)
        )
        inference = self._run(src)
        assert inference.table.override_pairs() == ()
        assert inference.resolution_pairs_checked == 0


class TestSccFootprints:
    SRC = """
    class Box extends Object {
      Object item;
      Object take() { return this.item; }
    }
    class Other extends Object {
      int v;
      int get() { return this.v; }
    }
    class User extends Object {
      Object use(Box b) { return b.take(); }
    }
    """

    def _footprints(self):
        program = parse_program(self.SRC)
        inference = RegionInference(program)
        graph = DependencyGraph(program, inference.table)
        return SccFootprints(graph)

    def test_footprint_contains_own_pre_callees_and_owner_line(self):
        fps = self._footprints()
        fp = fps.for_scc(["User.use"])
        assert "pre.User.use" in fp
        assert "pre.Box.take" in fp  # transitive callee
        assert "inv.Box" in fp  # reachable classinv
        assert "inv.User" in fp  # owner line
        assert "inv.Object" in fp  # universal by fiat

    def test_unrelated_names_stay_outside(self):
        fps = self._footprints()
        fp = fps.for_scc(["User.use"])
        assert "pre.Other.get" not in fp
        assert "inv.Other" not in fp
        assert len(fp) < len(list(iter(fp))) + 1  # __len__/__iter__ agree

    def test_for_method_matches_for_scc(self):
        fps = self._footprints()
        assert fps.for_method("Box.take") is fps.for_scc(["Box.take"])


class TestScopedEnvGate:
    def test_out_of_footprint_read_raises(self):
        env = AbstractionEnv(
            [ConstraintAbstraction("inv.A", (), TRUE),
             ConstraintAbstraction("inv.B", (), TRUE)]
        )
        scoped = ScopedAbstractionEnv(env, {"inv.A"})
        assert scoped["inv.A"].name == "inv.A"
        with pytest.raises(FootprintViolation):
            scoped["inv.B"]
        with pytest.raises(FootprintViolation):
            "inv.B" in scoped

    def test_writes_pass_through_to_the_wrapped_env(self):
        env = AbstractionEnv()
        scoped = ScopedAbstractionEnv(env, {"pre.f"})
        scoped.define(ConstraintAbstraction("pre.f", (), TRUE))
        assert "pre.f" in env


class TestScopedInferenceIsIdentical:
    def test_scoped_and_whole_env_agree_on_override_ladder(self):
        src = _override_ladder(4, 3)
        outputs = {}
        for scoped in (True, False):
            config = InferenceConfig(footprint_scope=scoped)
            result = infer_program(parse_program(src), config)
            outputs[scoped] = pretty_target(result.target)
        assert outputs[True] == outputs[False]
