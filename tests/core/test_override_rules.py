"""Unit tests for the individual override-resolution rules (Sec 4.4).

The resolver classifies each missing atom of ``pre.B.mn`` and repairs it:
rule 2 adds to ``pre.A.mn``, rule 3 to ``inv.B``, rule 4 splits via a
substitution.  These tests drive the resolver on hand-built abstractions
so each rule fires in isolation.
"""

import pytest

from repro.core import InferenceConfig, SubtypingMode, infer_source
from repro.core.override import OverrideResolver, check_override
from repro.regions import Outlives, RegionEq, RegionSolver
from tests.conftest import infer_and_check


def _setup(src, mode=SubtypingMode.OBJECT):
    result = infer_and_check(src, mode=mode)
    resolver = OverrideResolver(
        result.table, result.target.q, result.annotations, result.schemes
    )
    return result, resolver


class TestRule2_AddToSuperPre(object):
    """Missing atom over shared method/class regions -> pre.A.mn."""

    SRC = """
    class A extends Object {
      Object slot;
      void put(Object o) { }
    }
    class B extends A {
      void put(Object o) { slot = o; }
    }
    """

    def test_atom_lands_in_super_pre(self):
        result, _ = _setup(self.SRC)
        # after the engine's built-in resolution, the check must hold
        missing = check_override(
            result.target.q,
            result.annotations,
            result.schemes["B.put"],
            result.schemes["A.put"],
        )
        assert missing.is_true
        # and the strengthened pre.A.put carries B's store requirement
        a_scheme = result.schemes["A.put"]
        pre = result.target.q[a_scheme.pre].body
        assert not pre.is_true

    def test_callers_through_a_satisfy_strengthened_pre(self):
        src = self.SRC + """
        void use(A a, Object x) { a.put(x); }
        int f() {
          use(new B(null), new Object());
          1
        }
        """
        infer_and_check(src)  # checker validates the call against final pre


class TestRule3_AddToSubInv(object):
    """Missing atom purely over subclass class regions -> inv.B."""

    SRC = """
    class A extends Object {
      Object x;
      void link() { }
    }
    class B extends A {
      Object y;
      void link() { x = y; }
    }
    """

    def test_invariant_strengthened(self):
        result, _ = _setup(self.SRC)
        b = result.annotations["B"]
        # B.link stores y into x: ry >= rx must now be in inv.B
        rx, ry = b.regions[1], b.regions[2]
        solver = RegionSolver(result.target.q[b.inv].body)
        assert solver.entails_outlives(ry, rx)

    def test_allocating_b_satisfies_strengthened_inv(self):
        src = self.SRC + """
        int f() {
          B b = new B(null, null);
          b.link();
          1
        }
        """
        infer_and_check(src)


class TestRule4_Split(object):
    """Missing atom mixing subclass-only and method regions -> split
    (the paper's Triple.cloneRev case)."""

    SRC = """
    class Pair extends Object {
      Object fst;
      Object snd;
      Pair cloneRev() {
        Pair tmp = new Pair(null, null);
        tmp.fst = snd;
        tmp.snd = fst;
        tmp
      }
    }
    class Triple extends Pair {
      Object thd;
      Pair cloneRev() {
        Pair tmp = new Pair(null, null);
        tmp.fst = thd;
        tmp.snd = fst;
        tmp
      }
    }
    """

    def test_substitution_recorded_as_invariant_equality(self):
        result, _ = _setup(self.SRC)
        triple = result.annotations["Triple"]
        r3a = triple.regions[3]
        solver = RegionSolver(result.target.q[triple.inv].body)
        # rule 4 equated the subclass-only region with an inherited one
        assert any(
            solver.same_region(r3a, r) for r in triple.regions[:3]
        )

    def test_resolution_logged(self):
        result, resolver = _setup(self.SRC)
        resolver.resolve_all()
        # idempotent: already resolved by the engine, nothing new to add
        assert all(
            c.added_to_pre.is_true and c.added_to_inv.is_true
            for c in resolver.log
        )


class TestIdempotence(object):
    def test_second_resolution_is_noop(self):
        src = TestRule4_Split.SRC
        result, resolver = _setup(src)
        resolver.resolve_all()
        before = {a.name: a.body for a in result.target.q}
        resolver.resolve_all()
        after = {a.name: a.body for a in result.target.q}
        assert before == after
