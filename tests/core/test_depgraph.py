"""Unit tests for the global dependency graph (paper Sec 4.3)."""

import pytest

from repro.core.depgraph import DependencyGraph, classinv_node, method_node
from repro.frontend import parse_program
from repro.typing import check_program


def graph(src):
    program = parse_program(src)
    table = check_program(program)
    return DependencyGraph(program, table)


def order_of(g):
    """position of each method in the processing order."""
    out = {}
    for i, group in enumerate(g.method_sccs()):
        for name in group:
            out[name] = i
    return out


class TestCallEdges(object):
    def test_callee_processed_first(self):
        g = graph(
            """
            int callee() { 1 }
            int caller() { callee() }
            """
        )
        pos = order_of(g)
        assert pos["callee"] < pos["caller"]

    def test_instance_call_resolution(self):
        g = graph(
            """
            class A { int x; int get() { x } }
            int f(A a) { a.get() }
            """
        )
        pos = order_of(g)
        assert pos["A.get"] < pos["f"]

    def test_call_through_field_read(self):
        g = graph(
            """
            class A { int x; int get() { x } }
            class Holder { A inner; }
            int f(Holder h) { h.inner.get() }
            """
        )
        pos = order_of(g)
        assert pos["A.get"] < pos["f"]


class TestRecursionSCCs(object):
    def test_self_recursion_is_singleton_scc(self):
        g = graph("int f(int n) { if (n == 0) { 0 } else { f(n - 1) } }")
        assert ["f"] in g.method_sccs()

    def test_mutual_recursion_grouped(self):
        g = graph(
            """
            bool even(int n) { if (n == 0) { true } else { odd(n - 1) } }
            bool odd(int n) { if (n == 0) { false } else { even(n - 1) } }
            """
        )
        assert ["even", "odd"] in g.method_sccs()

    def test_independent_methods_separate(self):
        g = graph("int f() { 1 } int g() { 2 }")
        sccs = g.method_sccs()
        assert ["f"] in sccs and ["g"] in sccs


class TestOverrideEdges(object):
    SRC = """
    class A extends Object { Object x; Object get() { x } }
    class B extends A { Object y; Object get() { y } }
    Object use(A a) { a.get() }
    Object make() { use(new B(null, null)) }
    """

    def test_subclass_method_before_superclass_method(self):
        g = graph(self.SRC)
        pos = order_of(g)
        assert pos["B.get"] < pos["A.get"]

    def test_callers_after_both(self):
        g = graph(self.SRC)
        pos = order_of(g)
        assert pos["use"] > pos["A.get"]
        assert pos["use"] > pos["B.get"]

    def test_classinv_edges_present(self):
        g = graph(self.SRC)
        deps = g.edges[classinv_node("B")]
        assert method_node("B.get") in deps
        assert method_node("A.get") in deps

    def test_user_of_subclass_after_override_resolution(self):
        g = graph(self.SRC)
        # make allocates B, so it depends on classinv(B), which depends on
        # the override pair's methods
        assert classinv_node("B") in g.edges[method_node("make")]
        pos = order_of(g)
        assert pos["make"] > pos["B.get"]


class TestUsesClassEdges(object):
    def test_new_creates_dependency(self):
        g = graph(
            """
            class A { Object x; }
            A f() { new A(null) }
            """
        )
        assert classinv_node("A") in g.edges[method_node("f")]

    def test_own_class_exempt(self):
        """A method of B never takes a classinv edge on B (cycle guard)."""
        g = graph("class B { Object x; B self() { this } }")
        assert classinv_node("B") not in g.edges[method_node("B.self")]

    def test_local_decl_type_creates_dependency(self):
        g = graph(
            """
            class A { Object x; }
            int f() { A a = (A) null; 1 }
            """
        )
        assert classinv_node("A") in g.edges[method_node("f")]


class TestCallResolutionPrecision(object):
    def test_local_in_nested_block_resolves_receiver(self):
        # the receiver's type comes from a LocalDecl inside an if-branch
        # block, not the method's parameter list
        g = graph(
            """
            class A { int x; int get() { x } }
            int f(int n) {
              if (n > 0) { A a = new A(1); a.get() } else { 0 }
            }
            """
        )
        pos = order_of(g)
        assert pos["A.get"] < pos["f"]

    def test_primitive_shadowing_drops_stale_binding(self):
        # the inner block re-declares `a` as int; the call after it in an
        # outer scope still resolves through the outer binding
        g = graph(
            """
            class A { int x; int get() { x } }
            int f(A a) {
              int r = if (a.x > 0) { int a = 1; a } else { 0 };
              a.get() + r
            }
            """
        )
        pos = order_of(g)
        assert pos["A.get"] < pos["f"]

    def test_same_name_fallback_partitions_static_and_instance(self):
        # when receiver resolution fails, the conservative fallback
        # depends on every same-name method of the right kind
        g = graph(
            """
            class A { int x; int get() { x } }
            class B { int y; int get() { y } }
            int get() { 1 }
            """
        )
        assert g._same_name_methods("get", static=False) == ["A.get", "B.get"]
        assert g._same_name_methods("get", static=True) == ["get"]
