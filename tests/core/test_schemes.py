"""Unit tests for class annotation and method schemes (paper Sec 3.1/3.3)."""

import pytest

from repro.core.schemes import ClassAnnotator, InferenceError
from repro.frontend import parse_program
from repro.regions import AbstractionEnv, RegionSolver
from repro.typing import check_program


def annotate(src):
    program = parse_program(src)
    table = check_program(program)
    q = AbstractionEnv()
    annotator = ClassAnnotator(table, q)
    return annotator, annotator.annotate_all(), q, program


class TestSimpleClasses(object):
    def test_object_has_one_region(self):
        _, annos, _, _ = annotate("class A { }")
        assert annos["Object"].arity == 1

    def test_class_without_fields(self):
        _, annos, _, _ = annotate("class A { }")
        assert annos["A"].arity == 1

    def test_primitive_fields_need_no_regions(self):
        _, annos, _, _ = annotate("class A { int x; bool b; }")
        assert annos["A"].arity == 1

    def test_object_field_adds_one_region(self):
        _, annos, _, _ = annotate("class A { Object x; }")
        assert annos["A"].arity == 2

    def test_field_of_wider_class_adds_its_arity(self):
        src = "class P { Object a; Object b; } class Q { P p; }"
        _, annos, _, _ = annotate(src)
        assert annos["P"].arity == 3
        assert annos["Q"].arity == 1 + 3

    def test_invariant_is_no_dangling(self):
        _, annos, q, _ = annotate("class A { Object x; Object y; }")
        anno = annos["A"]
        solver = RegionSolver(q[anno.inv].body)
        for r in anno.regions[1:]:
            assert solver.entails_outlives(r, anno.regions[0])


class TestSubclasses(object):
    SRC = """
    class A extends Object { Object x; }
    class B extends A { Object y; }
    """

    def test_prefix_property(self):
        _, annos, _, _ = annotate(self.SRC)
        a, b = annos["A"], annos["B"]
        assert b.super_prefix == a.arity
        assert b.arity == a.arity + 1
        assert b.super_regions == b.regions[: a.arity]

    def test_subclass_invariant_strengthens(self):
        _, annos, q, _ = annotate(self.SRC)
        b = annos["B"]
        a = annos["A"]
        solver = RegionSolver(q[b.inv].body)
        sup_inv = q[a.inv].instantiate(list(b.super_regions))
        assert solver.entails(sup_inv)

    def test_inherited_field_types_reexpressed(self):
        src = self.SRC
        annotator, annos, _, _ = annotate(src)
        fields = dict(annotator.field_types("B"))
        b = annos["B"]
        # x (inherited) is typed over B's own prefix regions
        assert set(fields["x"].regions) <= set(b.regions)


class TestRecursiveClasses(object):
    def test_rec_region_is_last(self):
        _, annos, _, _ = annotate("class L { Object v; L next; }")
        anno = annos["L"]
        assert anno.rec_region == anno.regions[-1]

    def test_recursive_field_annotation(self):
        """next: L<rn, r2..rn> for L<r1, r2, .., rn> (Sec 3.1)."""
        _, annos, _, _ = annotate("class L { Object v; L next; }")
        anno = annos["L"]
        nxt = anno.own_field_types["next"]
        assert nxt.regions == (anno.rec_region,) + anno.regions[1:]

    def test_two_recursive_fields_share_the_region(self):
        _, annos, _, _ = annotate("class T { Object v; T left; T right; }")
        anno = annos["T"]
        left = anno.own_field_types["left"]
        right = anno.own_field_types["right"]
        assert left.regions == right.regions
        assert left.regions[0] == anno.rec_region

    def test_recursive_invariant_closed_form(self):
        """inv.L entails r2 >= r3 (value outlives the recursive spine)."""
        _, annos, q, _ = annotate("class L { Object v; L next; }")
        anno = annos["L"]
        r1, r2, r3 = anno.regions
        solver = RegionSolver(q[anno.inv].body)
        assert solver.entails_outlives(r2, r3)
        assert solver.entails_outlives(r3, r1)


class TestMutualRecursion(object):
    SRC = """
    class Node { int v; Kids kids; }
    class Kids { Node item; Kids rest; }
    """

    def test_shared_tail(self):
        _, annos, _, _ = annotate(self.SRC)
        node, kids = annos["Node"], annos["Kids"]
        assert node.regions[1:] == kids.regions[1:]
        assert node.regions[0] != kids.regions[0]
        assert node.rec_region == kids.rec_region

    def test_recursive_field_arities_consistent(self):
        _, annos, _, _ = annotate(self.SRC)
        node, kids = annos["Node"], annos["Kids"]
        assert len(node.own_field_types["kids"].regions) == kids.arity
        assert len(kids.own_field_types["item"].regions) == node.arity

    def test_invariants_close(self):
        _, annos, q, _ = annotate(self.SRC)
        for cn in ("Node", "Kids"):
            assert q[annos[cn].inv].is_closed

    def test_mutual_scc_with_non_object_super_rejected(self):
        src = """
        class Base { int x; }
        class Node extends Base { Kids kids; }
        class Kids { Node item; Kids rest; }
        """
        with pytest.raises(InferenceError):
            annotate(src)


class TestMethodSchemes(object):
    def test_fresh_regions_per_param_and_result(self):
        src = """
        class L { Object v; L next; }
        L dup(L a, L b) { a }
        """
        annotator, annos, _, program = annotate(src)
        scheme = annotator.method_scheme(program.statics[0])
        # two L params (3 regions each) + L result (3) = 9 method regions
        assert len(scheme.region_params) == 9
        assert len(set(scheme.region_params)) == 9

    def test_instance_scheme_includes_class_regions(self):
        src = "class L { Object v; L next; L self() { this } }"
        annotator, annos, _, program = annotate(src)
        method = program.classes[0].methods[0]
        scheme = annotator.method_scheme(method)
        assert scheme.class_regions == annos["L"].regions
        assert len(scheme.abstraction_params) == 3 + 3

    def test_primitive_params_need_no_regions(self):
        src = "int f(int a, bool b) { a }"
        annotator, _, _, program = annotate(src)
        scheme = annotator.method_scheme(program.statics[0])
        assert scheme.region_params == ()

    def test_pre_name(self):
        src = "class L { Object v; L self() { this } }"
        annotator, _, _, program = annotate(src)
        scheme = annotator.method_scheme(program.classes[0].methods[0])
        assert scheme.pre == "pre.L.self"
