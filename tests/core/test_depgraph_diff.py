"""Structural fingerprints and graph diffing for incremental dirtying."""

from repro.core.depgraph import DependencyGraph, diff
from repro.frontend import parse_program
from repro.typing import check_program


def graph(src):
    program = parse_program(src)
    table = check_program(program)
    return DependencyGraph(program, table)


CHAIN = """
class Box extends Object { Object payload; }
Object leaf(Box b) { %s }
Object mid(Box b) { leaf(b) }
Object top(Box b) { mid(b) }
int aside(int n) { %s }
"""


def chain(leaf_body="b.payload", aside_body="n + 1"):
    return graph(CHAIN % (leaf_body, aside_body))


class TestFingerprints(object):
    def test_whitespace_insensitive(self):
        a = chain()
        b = graph(
            (CHAIN % ("b.payload", "n + 1"))
            .replace("{", "{\n    ")
            .replace(";", " ;")
        )
        assert a.node_fingerprints() == b.node_fingerprints()

    def test_body_edit_changes_own_fingerprint(self):
        fps_a = chain().node_fingerprints()
        fps_b = chain(aside_body="n + 2").node_fingerprints()
        changed = {n.name for n in fps_a if fps_a[n] != fps_b.get(n)}
        assert changed == {"aside"}

    def test_transitive_fingerprints_ripple_to_callers(self):
        fps_a = chain().node_fingerprints()
        fps_b = chain(leaf_body="(Object) null").node_fingerprints()
        changed = {n.name for n in fps_a if fps_a[n] != fps_b.get(n)}
        assert {"leaf", "mid", "top"} <= changed
        assert "aside" not in changed


class TestDiff(object):
    def test_identical_graphs_are_clean(self):
        d = diff(chain(), chain())
        assert d.clean
        assert not d.is_dirty("leaf")

    def test_leaf_edit_dirties_callers_only(self):
        d = diff(chain(), chain(leaf_body="(Object) null"))
        assert not d.full
        assert {"leaf", "mid", "top"} <= d.methods
        assert "aside" not in d.methods

    def test_independent_edit_stays_local(self):
        d = diff(chain(), chain(aside_body="n * 2"))
        assert d.methods == frozenset({"aside"})

    def test_added_and_removed_methods_reported(self):
        base = CHAIN % ("b.payload", "n + 1")
        d = diff(graph(base), graph(base + "\nint extra(int n) { n }\n"))
        assert d.added == frozenset({"extra"})
        assert not d.removed
        back = diff(graph(base + "\nint extra(int n) { n }\n"), graph(base))
        assert back.removed == frozenset({"extra"})

    def test_class_shape_change_forces_full(self):
        a = graph("class Box extends Object { Object fst; } int f() { 1 }")
        b = graph("class Box extends Object { Object snd; } int f() { 1 }")
        d = diff(a, b)
        assert d.full
        assert "class structure" in d.reason
        assert d.is_dirty("f")

    def test_recursive_nest_dirties_as_one(self):
        template = """
        int even(int n) { if (n == 0) { %s } else { odd(n - 1) } }
        int odd(int n) { if (n == 0) { 0 } else { even(n - 1) } }
        int user(int n) { even(n) }
        """
        d = diff(graph(template % "1"), graph(template % "2"))
        # even/odd are one SCC: editing even must dirty odd too
        assert {"even", "odd", "user"} <= d.methods

    def test_override_edit_dirties_owner_invariant_users(self):
        template = """
        class A extends Object { Object x; Object get() { x } }
        class B extends A { Object y; Object get() { %s } }
        Object use(A a) { a.get() }
        """
        d = diff(graph(template % "y"), graph(template % "x"))
        assert not d.full
        assert "B.get" in d.methods
        # override resolution may strengthen A's invariant, so methods
        # hypothesising over it are dirtied as well
        assert "use" in d.methods
