"""Unit tests for the downcast analysis internals (Sec 5)."""

import pytest

from repro.core.downcast import DowncastAnalysis, DowncastStrategy, PaddingPlan
from repro.frontend import parse_program
from repro.typing import check_program


def analyse(src):
    program = parse_program(src)
    table = check_program(program)
    return DowncastAnalysis(program, table)


class TestFlowGathering(object):
    def test_assignment_flow(self):
        a = analyse(
            """
            class A { }
            class B extends A { int x; }
            void f() {
              A a = new B(0);
              A b = a;
              (B) b;
            }
            """
        )
        sets = a.downcast_sets()
        assert sets[("var", "f", "b")] == frozenset({"B"})
        # and the closure reaches a and the allocation site
        assert sets[("var", "f", "a")] == frozenset({"B"})
        assert any(k[0] == "new" for k in sets)

    def test_upcast_without_downcast_yields_nothing(self):
        a = analyse(
            """
            class A { }
            class B extends A { int x; }
            A f() { new B(0) }
            """
        )
        assert not a.downcast_sets()

    def test_cast_of_same_class_is_not_a_downcast(self):
        a = analyse(
            """
            class A { }
            A f(A x) { (A) x }
            """
        )
        assert not a.downcast_sets()

    def test_flow_through_field(self):
        a = analyse(
            """
            class A { }
            class B extends A { int x; }
            class Holder { A slot; }
            int f(Holder h) {
              h.slot = new B(0);
              ((B) h.slot).x
            }
            """
        )
        sets = a.downcast_sets()
        assert sets.get(("field", "Holder", "slot")) == frozenset({"B"})

    def test_flow_through_return(self):
        a = analyse(
            """
            class A { }
            class B extends A { int x; }
            A mk() { new B(0) }
            int f() { ((B) mk()).x }
            """
        )
        sets = a.downcast_sets()
        assert sets.get(("ret", "mk", "")) == frozenset({"B"})

    def test_if_branches_both_flow(self):
        a = analyse(
            """
            class A { }
            class B extends A { int x; }
            class C extends A { int y; }
            int f(bool c) {
              A v = if (c) { new B(0) } else { new C(0) };
              ((B) v).x
            }
            """
        )
        sets = a.downcast_sets()
        # both allocation sites feed v, so both get the mark
        news = [k for k in sets if k[0] == "new"]
        assert len(news) == 2


class TestPlan(object):
    def test_unrelated_class_not_counted(self):
        a = analyse(
            """
            class A { }
            class B extends A { int x; }
            class Z { }
            int f(A v) { ((B) v).x }
            """
        )
        plan = a.build_plan()
        # B adds no region over A (int field) -> no pads needed
        assert plan.pads_for_var("f", "v") == 0

    def test_pad_count_uses_region_arity_difference(self):
        a = analyse(
            """
            class A { }
            class B extends A { Object p; Object q; }
            Object f(A v) { ((B) v).p }
            """
        )
        plan = a.build_plan()
        assert plan.pads_for_var("f", "v") == 2

    def test_deepest_target_wins(self):
        a = analyse(
            """
            class A { }
            class B extends A { Object p; }
            class C extends B { Object q; }
            Object f(A v, bool deep) {
              if (deep) { ((C) v).q } else { ((B) v).p }
            }
            """
        )
        plan = a.build_plan()
        assert plan.pads_for_var("f", "v") == 2  # C's arity - A's arity

    def test_empty_plan_api(self):
        plan = PaddingPlan()
        assert plan.pads_for_var("m", "x") == 0
        assert plan.pads_for_site("l1") == 0
        assert plan.pads_for_field("C", "f") == 0


class TestStrategyEnum(object):
    def test_values(self):
        assert DowncastStrategy("padding") is DowncastStrategy.PADDING
        assert DowncastStrategy("first-region") is DowncastStrategy.FIRST_REGION
        assert DowncastStrategy("reject") is DowncastStrategy.REJECT
