"""Unit tests for the class table (fieldlist / methlist / split / etc.)."""

import pytest

from repro.frontend import parse_program
from repro.lang.class_table import ClassTable, ClassTableError
from repro.lang import ast as S

HIERARCHY = """
class A extends Object {
  int x;
  int getX() { x }
  int answer() { 41 }
}
class B extends A {
  int y;
  int answer() { 42 }
  int getY() { y }
}
class C extends B { int z; }
"""


def table(src=HIERARCHY):
    return ClassTable(parse_program(src))


class TestHierarchy:
    def test_ancestors(self):
        t = table()
        assert t.ancestors("C") == ("C", "B", "A", "Object")

    def test_is_subclass_reflexive(self):
        t = table()
        assert t.is_subclass("B", "B")

    def test_is_subclass_transitive(self):
        t = table()
        assert t.is_subclass("C", "A")
        assert not t.is_subclass("A", "C")

    def test_msst(self):
        src = HIERARCHY + "class D extends A { int w; }"
        t = table(src)
        assert t.msst("C", "D") == "A"
        assert t.msst("B", "C") == "B"
        assert t.msst("A", "D") == "A"

    def test_related(self):
        src = HIERARCHY + "class D extends A { int w; }"
        t = table(src)
        assert t.related("C", "A")
        assert not t.related("C", "D")

    def test_strict_subclasses(self):
        t = table()
        assert set(t.strict_subclasses("A")) == {"B", "C"}

    def test_unknown_superclass_rejected(self):
        with pytest.raises(ClassTableError):
            table("class A extends Missing { }")

    def test_duplicate_class_rejected(self):
        with pytest.raises(ClassTableError):
            table("class A { } class A { }")

    def test_inheritance_cycle_rejected(self):
        with pytest.raises(ClassTableError):
            table("class A extends B { } class B extends A { }")


class TestMembers:
    def test_fieldlist_inherited_first(self):
        t = table()
        assert [f.name for f in t.fields("C")] == ["x", "y", "z"]

    def test_lookup_field_finds_owner(self):
        t = table()
        decl, owner = t.lookup_field("C", "y")
        assert owner == "B"

    def test_lookup_field_missing(self):
        t = table()
        assert t.lookup_field("A", "nope") is None

    def test_methlist_applies_overriding(self):
        t = table()
        methods = {m.name: owner for (m, owner) in t.methods("B")}
        assert methods["answer"] == "B"
        assert methods["getX"] == "A"

    def test_lookup_method_most_derived(self):
        t = table()
        decl, owner = t.lookup_method("C", "answer")
        assert owner == "B"

    def test_override_pairs(self):
        t = table()
        assert ("B", "A", "answer") in t.override_pairs()

    def test_field_shadowing_rejected(self):
        with pytest.raises(ClassTableError):
            table("class A { int x; } class B extends A { int x; }")

    def test_override_signature_mismatch_rejected(self):
        with pytest.raises(ClassTableError):
            table(
                "class A { int f() { 1 } } "
                "class B extends A { bool f() { true } }"
            )


class TestRecursion:
    def test_self_recursive_field(self):
        t = table("class List { int v; List next; }")
        nonrec, rec = t.split("List")
        assert [f.name for f in nonrec] == ["v"]
        assert [f.name for f in rec] == ["next"]

    def test_mutually_recursive_fields(self):
        src = """
        class Node { int v; Kids kids; }
        class Kids { Node item; Kids rest; }
        """
        t = table(src)
        assert t.same_scc("Node", "Kids")
        _, rec_node = t.split("Node")
        assert [f.name for f in rec_node] == ["kids"]
        _, rec_kids = t.split("Kids")
        assert {f.name for f in rec_kids} == {"item", "rest"}

    def test_non_recursive_class_reference(self):
        src = "class A { int x; } class B { A a; }"
        t = table(src)
        assert not t.same_scc("A", "B")
        nonrec, rec = t.split("B")
        assert not rec

    def test_is_rec_read_only_true(self):
        src = """
        class RList { int v; RList next; }
        int len(RList l) { if (l == null) { 0 } else { 1 + len(l.next) } }
        """
        assert table(src).is_rec_read_only("RList")

    def test_is_rec_read_only_false_on_assignment(self):
        src = """
        class List { int v; List next; }
        void clobber(List l) { l.next = (List) null; }
        """
        assert not table(src).is_rec_read_only("List")

    def test_is_rec_read_only_false_without_recursion(self):
        assert not table("class A { int x; }").is_rec_read_only("A")
