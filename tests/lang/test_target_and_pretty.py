"""Unit tests for the target AST helpers and the pretty printers."""

import pytest

from repro.frontend import parse_program
from repro.lang import ast as S
from repro.lang import target as T
from repro.lang.pretty import pretty_constraint, pretty_expr, pretty_program, pretty_target
from repro.regions import Region, RegionSubst, outlives


class TestTargetTypes:
    def test_owner_region(self):
        a, b = Region.fresh_many(2)
        t = T.RClass("Pair", (a, b))
        assert t.owner_region == a

    def test_owner_region_requires_regions(self):
        with pytest.raises(ValueError):
            T.RClass("Pair", ()).owner_region

    def test_type_regions_includes_padding(self):
        a, b, p = Region.fresh_many(3)
        t = T.RClass("A", (a, b), (p,))
        assert set(T.type_regions(t)) == {a, b, p}

    def test_subst_type(self):
        a, b, c = Region.fresh_many(3)
        t = T.RClass("A", (a, b))
        out = T.subst_type(RegionSubst({a: c}), t)
        assert out.regions == (c, b)

    def test_prim_types_have_no_regions(self):
        assert T.type_regions(T.R_INT) == ()

    def test_str_with_padding(self):
        a, b, p = Region.fresh_many(3)
        t = T.RClass("A", (a, b), (p,))
        assert str(t).startswith("A<")
        assert "[" in str(t)


class TestRenameExprRegions:
    def test_renames_new_and_letreg(self):
        a, b = Region.fresh_many(2)
        new = T.TNew(class_name="A", regions=(a,), args=[], type=T.RClass("A", (a,)))
        letreg = T.TLetreg(regions=(a,), body=new, type=new.type)
        T.rename_expr_regions(letreg, RegionSubst({a: b}))
        assert letreg.regions == (b,)
        assert new.regions == (b,)
        assert new.type.regions == (b,)

    def test_renames_call_region_args(self):
        a, b = Region.fresh_many(2)
        call = T.TCall(method_name="f", region_args=(a,), type=T.R_VOID)
        T.rename_expr_regions(call, RegionSubst({a: b}))
        assert call.region_args == (b,)


class TestSourcePretty:
    def test_roundtrip_shapes(self):
        src = """
        class A extends Object {
          int x;
          int getX() { x }
        }
        int main(int n) { new A(n).getX() }
        """
        p = parse_program(src)
        text = pretty_program(p)
        p2 = parse_program(text)
        assert [c.name for c in p2.classes] == ["A"]

    def test_expr_rendering(self):
        from repro.frontend import parse_expr

        assert pretty_expr(parse_expr("a + b * c")) == "(a + (b * c))"
        assert pretty_expr(parse_expr("x.f")) == "x.f"
        assert pretty_expr(parse_expr("(B) x")) == "(B) x"


class TestTargetPretty:
    def test_renumbering_is_stable(self, request):
        from tests.conftest import PAIR_SOURCE, infer_and_check

        result = infer_and_check(PAIR_SOURCE)
        t1 = pretty_target(result.target)
        t2 = pretty_target(result.target)
        assert t1 == t2
        assert "r1" in t1

    def test_constraint_rendering(self):
        a, b = Region.fresh_many(2)
        text = pretty_constraint(outlives(a, b))
        assert ">=" in text
