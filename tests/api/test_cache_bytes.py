"""Cost-aware artifact caching: the ``max_cache_bytes`` bound.

A serving session's artifacts differ in size by orders of magnitude (a
parse tree vs a full ``InferenceResult``), so the byte bound — measured
as approximate pickled size — is what actually caps memory, with the
entry bound as a secondary guard.  The newest entry is never evicted:
a single oversized artifact must still be cacheable (and returned),
otherwise a big program would evict itself forever.
"""

import pytest

from repro.api import Session
from repro.api.session import (
    FALLBACK_ARTIFACT_BYTES,
    SessionStats,
    _approx_artifact_bytes,
    _ArtifactStore,
)
from tests.conftest import PAIR_SOURCE


class TestApproxBytes(object):
    def test_picklable_values_measure_their_pickle(self):
        small = _approx_artifact_bytes(1)
        big = _approx_artifact_bytes(list(range(10000)))
        assert 0 < small < big

    def test_unpicklable_values_fall_back_pessimistically(self):
        cost = _approx_artifact_bytes(lambda: None)
        assert cost >= FALLBACK_ARTIFACT_BYTES


class TestByteBound(object):
    def _store(self, max_bytes):
        self.stats = SessionStats()
        return _ArtifactStore(self.stats, max_bytes=max_bytes)

    def test_bytes_accumulate_and_clear(self):
        store = self._store(1 << 30)
        store.get_or_build("k", "a", lambda: "x" * 100)
        used = store.bytes_used
        assert used > 100
        store.get_or_build("k", "b", lambda: "y" * 100)
        assert store.bytes_used > used
        store.clear()
        assert store.bytes_used == 0

    def test_oldest_entries_are_evicted_to_fit(self):
        blob = "z" * 1000
        one = _approx_artifact_bytes(blob)
        store = self._store(int(one * 2.5))  # room for two blobs, not three
        for key in ("a", "b", "c"):
            store.get_or_build("k", key, lambda: "z" * 1000)
        assert store.bytes_used <= int(one * 2.5)
        assert self.stats.evictions.get("k") == 1
        # LRU order: "a" went, "b" and "c" stayed
        assert not store.contains("k", "a")
        assert store.contains("k", "b")
        assert store.contains("k", "c")

    def test_the_newest_entry_survives_even_oversized(self):
        store = self._store(8)  # smaller than any pickled artifact
        value, hit = store.get_or_build("k", "a", lambda: "w" * 1000)
        assert not hit and value == "w" * 1000
        assert store.contains("k", "a")
        # the next insert evicts it, but is itself kept
        store.get_or_build("k", "b", lambda: "v" * 1000)
        assert not store.contains("k", "a")
        assert store.contains("k", "b")

    def test_hits_refresh_recency_under_the_byte_bound(self):
        blob_cost = _approx_artifact_bytes("z" * 1000)
        store = self._store(int(blob_cost * 2.5))
        store.get_or_build("k", "a", lambda: "z" * 1000)
        store.get_or_build("k", "b", lambda: "z" * 1000)
        store.get_or_build("k", "a", lambda: "z" * 1000)  # hit: refresh "a"
        store.get_or_build("k", "c", lambda: "z" * 1000)
        assert store.contains("k", "a")
        assert not store.contains("k", "b")

    def test_entry_bound_still_applies_alongside_bytes(self):
        store = _ArtifactStore(SessionStats(), max_entries=2, max_bytes=1 << 30)
        for key in ("a", "b", "c"):
            store.get_or_build("k", key, lambda: key)
        assert not store.contains("k", "a")
        assert store.contains("k", "c")


class TestSessionSurface(object):
    def test_session_exposes_cache_bytes(self):
        with Session(max_cache_bytes=1 << 30) as session:
            assert session.cache_bytes == 0
            session.infer(PAIR_SOURCE)
            assert session.cache_bytes > 0

    def test_unbounded_sessions_do_not_pay_for_pickling(self):
        # no byte bound -> no cost bookkeeping at all
        with Session() as session:
            session.infer(PAIR_SOURCE)
            assert session.cache_bytes == 0

    def test_byte_bound_evicts_across_kinds(self):
        with Session(max_cache_bytes=1) as session:
            session.infer(PAIR_SOURCE)
            # every stage inserted then got evicted by its successor's
            # insert, except the newest artifact
            assert session.cache_size == 1
            assert sum(session.stats.evictions.values()) >= 3
