"""Tests for Session caching: hits/misses across config sweeps."""

import pytest

from repro.api import Session
from repro.checking import check_target
from repro.core import DowncastStrategy, InferenceConfig, SubtypingMode

PROGRAM = """
class List extends Object {
  Object value;
  List next;
  Object getValue() { value }
  List getNext() { next }
}
int length(List l) {
  if (l == (List) null) { 0 } else { 1 + length(l.getNext()) }
}
int main(int n) {
  int i = 0;
  List l = (List) null;
  while (i < n) { l = new List(null, l); i = i + 1; }
  length(l)
}
"""

OTHER = "int main(int n) { n * 2 }"

#: the ablation sweep of the acceptance criterion: four configs, one program
SWEEP = [
    InferenceConfig(mode=SubtypingMode.NONE),
    InferenceConfig(mode=SubtypingMode.OBJECT),
    InferenceConfig(mode=SubtypingMode.FIELD),
    InferenceConfig(mode=SubtypingMode.FIELD, localize_blocks=False),
]


class TestAblationSweep(object):
    def test_front_half_computed_once(self):
        session = Session()
        results = session.sweep(PROGRAM, SWEEP)
        assert len(results) == 4
        # parsing and class annotation ran exactly once; the three later
        # configs were pure cache hits on the config-independent stages
        for stage in ("parse", "typecheck", "annotate"):
            assert session.stats.miss_count(stage) == 1, session.stats.as_dict()
            assert session.stats.hit_count(stage) == 3, session.stats.as_dict()
        # inference itself is config-keyed: four distinct runs, no hits
        assert session.stats.miss_count("infer") == 4
        assert session.stats.hit_count("infer") == 0

    def test_sweep_results_are_independently_sound(self):
        session = Session()
        for config, result in zip(SWEEP, session.sweep(PROGRAM, SWEEP)):
            report = check_target(
                result.target,
                mode=config.mode.value,
                downcast=config.downcast.value,
            )
            assert report.ok, [str(i) for i in report.issues[:3]]

    def test_sweep_configs_do_not_leak_preconditions(self):
        """Each result's Q holds its own run's preconditions exactly once."""
        session = Session()
        results = session.sweep(PROGRAM, SWEEP)
        names = [sorted(a.name for a in r.target.q) for r in results]
        assert names[0] == names[1] == names[2] == names[3]
        assert any(n.startswith("pre.") for n in names[0])


class TestCacheKeys(object):
    def test_repeated_infer_is_a_hit(self):
        session = Session()
        first = session.infer(PROGRAM)
        second = session.infer(PROGRAM)
        assert first is second
        assert session.stats.hit_count("infer") == 1
        assert session.stats.miss_count("infer") == 1

    def test_modified_source_misses(self):
        session = Session()
        session.infer(PROGRAM)
        session.infer(PROGRAM + "\n// trailing comment\n")
        assert session.stats.miss_count("parse") == 2
        assert session.stats.hit_count("parse") == 0

    def test_distinct_programs_coexist(self):
        session = Session()
        a = session.infer(PROGRAM)
        b = session.infer(OTHER)
        assert a is not b
        assert session.infer(PROGRAM) is a
        assert session.infer(OTHER) is b

    def test_downcast_strategy_is_part_of_the_key(self):
        session = Session()
        session.infer(OTHER)
        session.infer(OTHER, InferenceConfig(downcast=DowncastStrategy.REJECT))
        assert session.stats.miss_count("infer") == 2
        assert session.stats.hit_count("annotate") == 1

    def test_clear_cache(self):
        session = Session()
        session.infer(PROGRAM)
        assert session.cache_size > 0
        session.clear_cache()
        assert session.cache_size == 0
        session.infer(PROGRAM)
        assert session.stats.miss_count("infer") == 2


class TestConveniences(object):
    def test_check(self):
        session = Session()
        report = session.check(PROGRAM)
        assert report.ok

    def test_check_raises_when_verification_never_ran(self):
        from repro.api import StageFailure

        session = Session()
        with pytest.raises(StageFailure) as exc:
            session.check("class Broken {")
        assert exc.value.diagnostics[0].code == "parse-error"

    def test_check_failure_names_the_stage_that_actually_failed(self):
        # regression: a parse failure used to surface as
        # StageFailure("verify", ...) because verify was merely skipped
        from repro.api import StageFailure

        with pytest.raises(StageFailure) as exc:
            Session().check("class Broken {")
        assert exc.value.stage == "parse"

        bad_type = (
            "class A extends Object { int x; }\n"
            "int main(int n) { new A(true).x }"
        )
        with pytest.raises(StageFailure) as exc:
            Session().check(bad_type)
        assert exc.value.stage == "typecheck"
        assert exc.value.diagnostics[0].code == "normal-type-error"

    def test_infer_failure_names_the_stage_that_actually_failed(self):
        # the same misattribution existed in every skipped-stage unwrap
        from repro.api import StageFailure

        with pytest.raises(StageFailure) as exc:
            Session().infer("class Broken {")
        assert exc.value.stage == "parse"
        assert exc.value.diagnostics  # and carries the real diagnostics

    def test_execute(self):
        session = Session()
        execution = session.execute(PROGRAM, "main", [5])
        assert str(execution.value) == "5"
        assert execution.stats.objects_allocated == 5

    def test_stats_render(self):
        session = Session()
        assert str(session.stats) == "no cache traffic"
        session.infer(OTHER)
        text = str(session.stats)
        assert "parse" in text and "miss" in text
        assert session.stats.as_dict()["misses"]["parse"] == 1
