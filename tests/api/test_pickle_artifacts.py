"""The pickling contract of the artifact layer.

The process executor backend ships ``InferenceResult``s, ``Diagnostic``s
and ``StageFailure``s across process boundaries; these tests pin the
contract piece by piece: value round trips, heap/null singleton identity,
uid behaviour under namespacing, and the solver's cache-dropping
``__getstate__``.
"""

import pickle

import pytest

from repro.api import Diagnostic, Severity, Session, StageFailure
from repro.checking import check_target
from repro.lang.pretty import pretty_target
from repro.regions.constraints import (
    Constraint,
    HEAP,
    NULL_REGION,
    Outlives,
    Region,
    RegionEq,
)
from repro.regions.solver import RegionSolver

PROGRAM = """
class List extends Object { int head; List tail; }
List build(int n) {
  if (n < 1) { (List) null } else { new List(n, build(n - 1)) }
}
int main(int n) {
  List l = build(n);
  l.head
}
"""


@pytest.fixture()
def preserved_uid_counter():
    """Restore the process-global uid counter after namespace games."""
    saved = Region._counter
    yield
    Region._counter = saved


class TestRegionPickling(object):
    def test_heap_unpickles_to_the_singleton(self):
        assert pickle.loads(pickle.dumps(HEAP)) is HEAP

    def test_null_unpickles_to_the_singleton(self):
        assert pickle.loads(pickle.dumps(NULL_REGION)) is NULL_REGION

    def test_singletons_survive_inside_structures(self):
        r = Region.fresh()
        atom = Outlives(HEAP, r)
        atom2 = pickle.loads(pickle.dumps(atom))
        assert atom2.left is HEAP
        assert atom2 == atom

    def test_variable_round_trips_by_value(self):
        r = Region.fresh("q")
        r2 = pickle.loads(pickle.dumps(r))
        assert r2 == r
        assert r2.uid == r.uid
        assert r2.name == r.name
        assert r2.kind == "var"

    def test_unpickling_does_not_consume_the_counter(self):
        r = Region.fresh()
        before = Region.watermark()
        pickle.loads(pickle.dumps(r))
        # watermark advances by exactly the one probe draw
        assert Region.watermark() == before + 1

    def test_shared_references_stay_shared(self):
        r = Region.fresh()
        c = Constraint.of(Outlives(r, Region.fresh()), RegionEq(r, Region.fresh()))
        c2 = pickle.loads(pickle.dumps(c))
        assert c2 == c


class TestUidNamespacing(object):
    def test_distinct_namespaces_never_collide(self, preserved_uid_counter):
        Region.namespace_uids(band=1)
        a = Region.fresh()
        blob = pickle.dumps(a)
        Region.namespace_uids(band=2)
        b = Region.fresh()
        a2 = pickle.loads(blob)
        assert a2 == a
        assert a2 != b and a2.uid != b.uid

    def test_unnamespaced_counters_do_collide(self, preserved_uid_counter):
        # the failure mode namespacing exists to prevent: two processes
        # both starting at uid 1 mint "equal" but unrelated regions
        Region._counter = iter(range(1000, 2000))
        a = Region.fresh()
        Region._counter = iter(range(1000, 2000))
        b = Region.fresh()
        assert a == b  # colliding uids conflate unrelated regions

    def test_namespace_preserves_uid_order(self, preserved_uid_counter):
        Region.namespace_uids(band=7)
        a, b = Region.fresh(), Region.fresh()
        assert a.uid < b.uid

    def test_namespace_rejects_non_positive_bands(self, preserved_uid_counter):
        with pytest.raises(ValueError):
            Region.namespace_uids(band=-1)
        # band 0 would restart at uid 1 — the parent namespace itself
        with pytest.raises(ValueError):
            Region.namespace_uids(band=0)

    def test_distinguished_uids_stay_below_every_namespace(
        self, preserved_uid_counter
    ):
        base = Region.namespace_uids()
        assert HEAP.uid < base and NULL_REGION.uid < base
        assert Region.fresh().uid > base


class TestSolverPickling(object):
    def _closed_solver(self):
        a, b, c = Region.fresh(), Region.fresh(), Region.fresh()
        solver = RegionSolver(
            Constraint.of(Outlives(a, b), Outlives(b, c), Outlives(c, b))
        )
        solver.close()
        return solver, (a, b, c)

    def test_round_trip_preserves_entailment(self):
        solver, (a, b, c) = self._closed_solver()
        assert solver.entails_outlives(a, c)
        solver2 = pickle.loads(pickle.dumps(solver))
        assert solver2.entails_outlives(a, c)
        assert solver2.same_region(b, c)  # the b <-> c cycle stayed collapsed

    def test_memoised_bitsets_are_dropped_and_rebuilt(self):
        solver, (a, b, c) = self._closed_solver()
        solver.reachable(a, c)  # force the bitset cache
        assert solver._reach is not None
        solver2 = pickle.loads(pickle.dumps(solver))
        assert solver2._reach is None and solver2._bit is None
        assert solver2._closed  # closure is a graph property and survives
        assert solver2.reachable(a, c)  # first query rebuilds the cache
        assert solver2._reach is not None


class TestArtifactPickling(object):
    def test_inference_result_round_trips(self):
        result = Session().infer(PROGRAM)
        result2 = pickle.loads(pickle.dumps(result))
        assert pretty_target(result2.target) == pretty_target(result.target)
        assert result2.fingerprint() == result.fingerprint()
        assert result2.config == result.config
        assert check_target(result2.target).ok

    def test_check_report_round_trips(self):
        report = Session().check(PROGRAM)
        report2 = pickle.loads(pickle.dumps(report))
        assert report2.ok and report2.obligations == report.obligations

    def test_diagnostic_round_trips(self):
        diag = Diagnostic(
            severity=Severity.ERROR,
            stage="parse",
            code="parse-error",
            message="boom",
            file="x.cj",
            line=3,
            col=7,
        )
        assert pickle.loads(pickle.dumps(diag)) == diag

    def test_stage_failure_round_trips(self):
        try:
            Session().infer("class Broken extends Object { int")
        except StageFailure as err:
            err2 = pickle.loads(pickle.dumps(err))
            assert err2.stage == err.stage == "parse"
            assert [d.to_dict() for d in err2.diagnostics] == [
                d.to_dict() for d in err.diagnostics
            ]
            assert str(err2) == str(err)
        else:  # pragma: no cover - the source above never parses
            pytest.fail("expected a StageFailure")
