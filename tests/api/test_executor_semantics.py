"""The worker-pool contract: ordering, failure semantics, sizing.

``map_ordered`` and ``map_ordered_process`` share one documented contract:
results in input order; on failure, not-yet-started items are cancelled,
running items drain, and the exception that propagates is the one from the
earliest item in *input* order among the failures that occurred.
"""

import threading
import time

import pytest

from repro.api.executor import (
    default_workers,
    map_ordered,
    map_ordered_process,
    resolve_backend,
)


def _process_square(x):
    return x * x


def _process_fail_on_negative(x):
    if x < 0:
        raise ValueError(f"bad item {x}")
    return x


class TestMapOrdered(object):
    def test_preserves_input_order(self):
        out = map_ordered(lambda x: x * 10, range(20), max_workers=4)
        assert out == [x * 10 for x in range(20)]

    def test_inline_paths(self):
        assert map_ordered(lambda x: x + 1, [], max_workers=4) == []
        assert map_ordered(lambda x: x + 1, [41], max_workers=4) == [42]
        assert map_ordered(lambda x: x + 1, [1, 2], max_workers=1) == [2, 3]

    def test_earliest_input_order_failure_wins(self):
        # item 0 fails *slowly*, item 5 fails immediately: the exception
        # that propagates must still be item 0's, deterministically
        def fn(i):
            if i == 0:
                time.sleep(0.2)
                raise ValueError("slow early failure")
            if i == 5:
                raise KeyError("fast late failure")
            return i

        with pytest.raises(ValueError, match="slow early failure"):
            map_ordered(fn, range(8), max_workers=4)

    def test_failure_cancels_not_yet_started_items(self):
        started = []
        lock = threading.Lock()

        def fn(i):
            with lock:
                started.append(i)
            if i == 0:
                raise ValueError("stop the batch")
            time.sleep(0.05)
            return i

        with pytest.raises(ValueError):
            map_ordered(fn, range(64), max_workers=2)
        # the failure cancelled the long tail before it could start
        assert len(started) < 64

    def test_running_items_drain_to_completion(self):
        started = []
        finished = []
        lock = threading.Lock()

        def fn(i):
            if i == 0:
                # fail only once the other items are demonstrably running,
                # so draining (not cancellation) is what the test observes
                # regardless of thread-startup timing under load
                deadline = time.time() + 5.0
                while time.time() < deadline:
                    with lock:
                        if len(started) == 2:
                            break
                    time.sleep(0.005)
                raise ValueError("failure after others started")
            with lock:
                started.append(i)
            time.sleep(0.05)
            with lock:
                finished.append(i)
            return i

        with pytest.raises(ValueError):
            map_ordered(fn, [0, 1, 2], max_workers=4)
        # items 1 and 2 had started before the failure; both drained
        assert sorted(finished) == [1, 2]


class TestMapOrderedProcess(object):
    def test_preserves_input_order(self):
        out = map_ordered_process(_process_square, range(10), max_workers=2)
        assert out == [x * x for x in range(10)]

    def test_exception_crosses_the_process_boundary(self):
        with pytest.raises(ValueError, match="bad item -1"):
            map_ordered_process(
                _process_fail_on_negative, [3, -1, 4], max_workers=2
            )

    def test_earliest_input_order_failure_wins(self):
        with pytest.raises(ValueError, match="bad item -7"):
            map_ordered_process(
                _process_fail_on_negative, [-7, 1, -2, 3], max_workers=2
            )

    def test_inline_path_runs_in_this_process(self):
        assert map_ordered_process(_process_square, [6], max_workers=2) == [36]
        assert map_ordered_process(_process_square, [2, 3], max_workers=1) == [4, 9]


class TestDefaultWorkers(object):
    def test_thread_cap_is_gil_bound(self, monkeypatch):
        import repro.api.executor as executor

        monkeypatch.setattr(
            executor.os, "sched_getaffinity", lambda pid: set(range(64)),
            raising=False,
        )
        assert default_workers(100) == 8
        assert default_workers(100, backend="thread") == 8

    def test_process_cap_scales_with_cores(self, monkeypatch):
        import repro.api.executor as executor

        monkeypatch.setattr(
            executor.os, "sched_getaffinity", lambda pid: set(range(64)),
            raising=False,
        )
        assert default_workers(100, backend="process") == 64
        assert default_workers(3, backend="process") == 3

    def test_bounded_by_the_workload_and_never_zero(self, monkeypatch):
        import repro.api.executor as executor

        monkeypatch.setattr(
            executor.os, "sched_getaffinity", lambda pid: set(range(4)),
            raising=False,
        )
        assert default_workers(2) == 2
        assert default_workers(0) == 1
        assert default_workers(0, backend="process") == 1


class TestResolveBackend(object):
    def test_explicit_backends_pass_through(self):
        assert resolve_backend("thread", 100) == "thread"
        assert resolve_backend("process", 1) == "process"

    def test_none_means_thread(self):
        assert resolve_backend(None, 100) == "thread"

    def test_auto(self, monkeypatch):
        import repro.api.executor as executor

        monkeypatch.setattr(
            executor.os, "sched_getaffinity", lambda pid: set(range(8)),
            raising=False,
        )
        assert resolve_backend("auto", 2) == "process"
        assert resolve_backend("auto", 1) == "thread"
        monkeypatch.setattr(
            executor.os, "sched_getaffinity", lambda pid: {0}, raising=False
        )
        assert resolve_backend("auto", 2) == "thread"

    def test_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("greenlets", 4)
