"""``run_many`` summaries and its process path.

The ROADMAP asked for "a reduced, picklable stage-result projection" to
take ``run_many`` beyond threads; these tests pin that projection
(:class:`StageSummary`) and the parity contract: the process backend's
summaries are identical to the thread backend's in stage, ok and
diagnostics, per program, across the whole Olden suite.
"""

import pickle

import pytest

from repro.api import Session, StageSummary
from repro.bench.olden import OLDEN_PROGRAMS

OLDEN_SOURCES = [program.source for program in OLDEN_PROGRAMS.values()]

BAD = "class Broken extends Object { int"
BAD_TYPE = (
    "class A extends Object { int x; }\nint main(int n) { new A(true).x }"
)

OK = """
class Box extends Object { int v; }
int main(int n) {
  Box b = new Box(n);
  b.v
}
"""

MIXED = [OK, BAD, BAD_TYPE, OLDEN_SOURCES[0]]


def _shape(rows):
    return [[(s.stage, s.ok, tuple(s.diagnostics)) for s in row] for row in rows]


class TestSummaries(object):
    def test_summary_projects_the_stage_result(self):
        session = Session()
        (full,) = session.run_many([BAD_TYPE])
        (summarised,) = session.run_many([BAD_TYPE], summaries=True)
        assert [s.stage for s in summarised] == [r.stage for r in full]
        assert [s.ok for s in summarised] == [r.ok for r in full]
        assert [list(s.diagnostics) for s in summarised] == [
            r.diagnostics for r in full
        ]
        assert all(isinstance(s, StageSummary) for s in summarised)

    def test_summary_records_the_cause_stage(self):
        pipe = Session().pipeline(BAD)
        skipped = pipe.infer()
        assert skipped.skipped
        summary = skipped.summary()
        assert summary.cause_stage == "parse"
        assert summary.skipped and not summary.ok

    def test_summaries_pickle(self):
        (row,) = Session().run_many([BAD_TYPE], summaries=True)
        clone = pickle.loads(pickle.dumps(row))
        assert _shape([clone]) == _shape([row])

    def test_to_dict_is_json_shaped(self):
        (row,) = Session().run_many([BAD], summaries=True)
        d = row[-1].to_dict()
        assert d["stage"] == "parse" and d["ok"] is False
        assert d["diagnostics"][0]["code"] == "parse-error"
        assert set(d) == {
            "stage",
            "ok",
            "cached",
            "skipped",
            "elapsed",
            "cause_stage",
            "diagnostics",
        }


class TestProcessBackend(object):
    def test_matches_thread_on_the_olden_suite(self):
        thread = Session().run_many(OLDEN_SOURCES, summaries=True, max_workers=2)
        with Session() as session:
            process = session.run_many(
                OLDEN_SOURCES, backend="process", summaries=True, max_workers=2
            )
        assert _shape(process) == _shape(thread)

    def test_matches_thread_on_failures(self):
        thread = Session().run_many(MIXED, summaries=True)
        with Session() as session:
            process = session.run_many(
                MIXED, backend="process", summaries=True, max_workers=2
            )
        assert _shape(process) == _shape(thread)
        # and the failing rows really carry the structured diagnostics
        assert process[1][-1].diagnostics[0].code == "parse-error"
        assert process[2][-1].diagnostics[0].code == "normal-type-error"

    def test_runs_on_the_session_pool(self):
        with Session() as session:
            session.run_many(
                MIXED, backend="process", summaries=True, max_workers=2
            )
            assert session.stats.event_count("pool.spawns") == 1
            # worker-side cache traffic is accounted under worker.* kinds
            assert session.stats.miss_count("worker.parse") >= 1
            # a second batch reuses the same pool
            session.run_many(
                MIXED, backend="process", summaries=True, max_workers=2
            )
            assert session.stats.event_count("pool.spawns") == 1

    def test_shares_the_pool_with_infer_many(self):
        with Session(backend="process") as session:
            session.run_many(MIXED, summaries=True, max_workers=2)
            session.infer_many([OK, OLDEN_SOURCES[0]], max_workers=2)
            assert session.stats.event_count("pool.spawns") == 1

    def test_until_is_honoured(self):
        with Session() as session:
            rows = session.run_many(
                [OK, OLDEN_SOURCES[0]],
                backend="process",
                summaries=True,
                until="typecheck",
                max_workers=2,
            )
            for row in rows:
                assert [s.stage for s in row] == ["parse", "typecheck"]

    def test_degenerate_batch_runs_inline(self):
        session = Session()
        (row,) = session.run_many(
            [BAD_TYPE], backend="process", summaries=True, max_workers=2
        )
        assert [s.stage for s in row] == ["parse", "typecheck"]
        # ran on this session: the parse artifact is a parent-cache miss,
        # not worker traffic, and no pool was spawned
        assert session.stats.miss_count("parse") == 1
        assert session.stats.event_count("pool.spawns") == 0


class TestBackendSelection(object):
    def test_explicit_process_without_summaries_is_an_error(self):
        with pytest.raises(ValueError, match="summaries=True"):
            Session().run_many(MIXED, backend="process", max_workers=2)

    def test_auto_without_summaries_falls_back_to_threads(self, monkeypatch):
        # "auto" means "pick what works": with full results requested the
        # process path cannot work, so auto lands on threads even when a
        # multi-core machine would otherwise pick process
        import repro.api.executor as executor

        monkeypatch.setattr(executor.os, "cpu_count", lambda: 8)
        session = Session()
        outcomes = session.run_many(MIXED, backend="auto", max_workers=2)
        assert [o[-1].ok for o in outcomes] == [True, False, False, True]
        assert session.stats.event_count("pool.spawns") == 0

    def test_session_default_process_falls_back_to_threads(self):
        # a process-default session still serves full StageResults: the
        # projection is opt-in, so backend resolution falls back rather
        # than surprising callers with summaries (or an error)
        session = Session(backend="process")
        outcomes = session.run_many([OK, BAD], max_workers=2)
        assert [o[-1].ok for o in outcomes] == [True, False]
        assert not isinstance(outcomes[0][0], StageSummary)
        assert session.stats.event_count("pool.spawns") == 0

    def test_session_default_process_with_summaries_uses_the_pool(self):
        with Session(backend="process") as session:
            session.run_many(MIXED, summaries=True, max_workers=2)
            assert session.stats.event_count("pool.spawns") == 1
