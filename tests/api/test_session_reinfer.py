"""``Session.reinfer``: document lineages and the two-tier SCC cache."""

import pytest

from repro.api import Session
from repro.bench.composite import composite_source, tweak_method_body
from repro.core import InferenceConfig, SubtypingMode
from repro.lang.pretty import pretty_target


EDIT = ("1103515245", "1103515246")  # bisort's nextRandom multiplier
OTHER_EDIT = ("100003", "100004")  # em3d's sumValues modulus


def rendered(result):
    return pretty_target(result.target, renumber=True)


@pytest.fixture(scope="module")
def sources():
    src = composite_source()
    return src, tweak_method_body(src, *EDIT)


class TestDocumentLifecycle(object):
    def test_first_submission_is_a_document_miss(self, sources):
        src, _ = sources
        session = Session()
        session.reinfer(src, document="buf")
        stats = session.stats.as_dict()
        assert stats["misses"].get("scc.document") == 1
        assert "scc.document" not in stats["hits"]

    def test_edit_takes_incremental_path(self, sources):
        src, edited = sources
        session = Session()
        session.reinfer(src, document="buf")
        result = session.reinfer(edited, document="buf")
        stats = session.stats.as_dict()
        assert stats["hits"].get("scc.document") == 1
        assert result.reused_sccs > 0
        assert result.reinferred_sccs >= 1
        assert stats["hits"].get("scc.reuse") == result.reused_sccs
        assert stats["misses"].get("scc.reuse") == result.reinferred_sccs
        assert rendered(result) == rendered(Session().infer(edited))

    def test_unchanged_resubmission_reuses_wholesale(self, sources):
        src, _ = sources
        session = Session()
        first = session.reinfer(src, document="buf")
        again = session.reinfer(src, document="buf")
        assert again is first
        stats = session.stats.as_dict()
        assert stats["hits"].get("scc.reuse") == len(first.scc_keys)

    def test_full_undo_is_a_file_level_hit(self, sources):
        src, edited = sources
        session = Session()
        original = session.reinfer(src, document="buf")
        session.reinfer(edited, document="buf")
        restored = session.reinfer(src, document="buf")
        stats = session.stats.as_dict()
        # reverting to a version already inferred never re-runs anything:
        # the file-level artifact answers before the SCC tier is probed
        assert restored is original
        assert stats["hits"].get("scc.reuse", 0) >= len(original.scc_keys)

    def test_partial_undo_is_served_from_the_scc_cache(self, sources):
        src, edited = sources
        both = tweak_method_body(edited, *OTHER_EDIT)
        only_other = tweak_method_body(src, *OTHER_EDIT)
        session = Session()
        session.reinfer(src, document="buf")
        session.reinfer(edited, document="buf")
        session.reinfer(both, document="buf")
        # reverting the first edit while keeping the second yields a
        # source never seen at file level — but the SCC the revert
        # dirties still sits in the cache under its original fingerprint
        restored = session.reinfer(only_other, document="buf")
        stats = session.stats.as_dict()
        assert stats["hits"].get("scc.lookup", 0) > 0
        assert restored.reinferred_sccs == 0
        assert rendered(restored) == rendered(Session().infer(only_other))

    def test_documents_are_independent(self, sources):
        src, edited = sources
        session = Session()
        session.reinfer(src, document="a")
        session.reinfer(edited, document="b")
        stats = session.stats.as_dict()
        # b's first submission must not splice against a's lineage
        assert stats["misses"].get("scc.document") == 2

    def test_config_is_part_of_the_document_key(self, sources):
        src, _ = sources
        session = Session()
        session.reinfer(src, document="buf")
        other = InferenceConfig(mode=SubtypingMode.NONE)
        session.reinfer(src, other, document="buf")
        stats = session.stats.as_dict()
        assert stats["misses"].get("scc.document") == 2


class TestCacheCoupling(object):
    def test_clear_cache_resets_both_tiers(self, sources):
        src, edited = sources
        # byte accounting only runs under a byte bound; pick one far too
        # large to ever evict
        session = Session(max_cache_bytes=1 << 30)
        session.reinfer(src, document="buf")
        session.reinfer(edited, document="buf")
        assert session.cache_bytes > 0
        session.clear_cache()
        assert session.cache_bytes == 0
        # the lineage is gone too: the next submission is a fresh miss
        session.reinfer(src, document="buf")
        stats = session.stats.as_dict()
        assert stats["misses"].get("scc.document") == 2

    def test_scc_entries_count_toward_cache_bytes(self, sources):
        src, edited = sources
        session = Session(max_cache_bytes=1 << 30)
        session.infer(src)
        session.infer(edited)
        file_tier_only = session.cache_bytes
        session.clear_cache()
        session.reinfer(src, document="buf")
        session.reinfer(edited, document="buf")
        assert session.cache_bytes > file_tier_only

    def test_evicting_the_anchor_discards_scc_entries(self, sources):
        src, edited = sources
        session = Session(max_cache_entries=2)
        session.reinfer(src, document="buf")
        session.reinfer(edited, document="buf")
        # churn unrelated artifacts until the document's infer anchor
        # falls out of the byte-weighted LRU
        filler = "int f%d(int n) { n + %d }"
        for i in range(4):
            session.infer(filler % (i, i))
        evictions = session.stats.as_dict()["evictions"]
        assert evictions.get("infer", 0) > 0
        assert evictions.get("scc", 0) > 0
        # the lineage was invalidated with its anchor: fresh miss
        misses_before = session.stats.as_dict()["misses"].get(
            "scc.document", 0
        )
        session.reinfer(src, document="buf")
        stats = session.stats.as_dict()
        assert stats["misses"].get("scc.document") == misses_before + 1


class TestByteIdentityThroughSession(object):
    def test_edit_chain_matches_scratch_at_every_step(self, sources):
        src, edited = sources
        twice = tweak_method_body(edited, *OTHER_EDIT)
        session = Session()
        scratch = Session()
        for version in (src, edited, twice, src):
            incr = session.reinfer(version, document="buf")
            assert rendered(incr) == rendered(scratch.infer(version))
