"""The persistent worker pool: reuse, crash recovery, lifecycle.

``WorkerPool`` is exercised both directly (with small module-level tasks —
including one that SIGKILLs its own worker mid-batch) and through the
session entry points that own one.  ``max_workers=2`` is forced throughout
so the pool actually spawns workers even on a single-core machine.

The kill tasks rely on the ``fork`` start method (the platform default on
Linux, and what the rest of the process-backend suite already assumes):
forked workers inherit this module in ``sys.modules``, so the tasks
unpickle without the tests package being importable.
"""

import os
import signal
import time

import pytest
from concurrent.futures.process import BrokenProcessPool

from repro.api import (
    DEFAULT_WORKER_CACHE_ENTRIES,
    Session,
    WorkerPool,
)
from repro.bench.olden import OLDEN_PROGRAMS
from repro.lang.pretty import pretty_target

OLDEN_SOURCES = [program.source for program in OLDEN_PROGRAMS.values()]


# -- module-level tasks (must pickle by qualified name) ----------------------


def _double(x):
    return x * 2


def _slow_double(x):
    time.sleep(0.15)
    return x * 2


def _worker_pid(_):
    return os.getpid()


def _boom(x):
    raise ValueError(f"boom {x}")


def _kill_once(payload):
    """Doubles ``value``; the first task to see an absent ``sentinel`` file
    creates it and SIGKILLs its own worker process — the retry (sentinel
    now present) computes normally."""
    value, sentinel = payload
    if sentinel is not None and not os.path.exists(sentinel):
        open(sentinel, "w").close()
        os.kill(os.getpid(), signal.SIGKILL)
    return value * 2


def _kill_always(payload):
    os.kill(os.getpid(), signal.SIGKILL)


def _worker_cache_bound(_):
    from repro.api.executor import worker_session

    return worker_session().max_cache_entries


class TestWorkerPoolMap(object):
    def test_ordered_results_and_single_spawn_across_batches(self):
        with WorkerPool() as pool:
            assert not pool.alive
            first = pool.map(_double, [1, 2, 3], max_workers=2)
            assert first == [2, 4, 6]
            assert pool.alive and pool.size == 2
            second = pool.map(_double, [10, 20], max_workers=2)
            assert second == [20, 40]
            # the whole point: one executor for the pool's lifetime
            assert pool.counters["pool.spawns"] == 1

    def test_workers_are_literally_reused(self):
        with WorkerPool() as pool:
            a = set(pool.map(_worker_pid, range(8), max_workers=2))
            b = set(pool.map(_worker_pid, range(8), max_workers=2))
            # same executor, same worker processes, for both batches (one
            # worker may serve a whole batch, so compare against the
            # executor's process table rather than the two pid sets)
            workers = set(pool._executor._processes)
            assert a <= workers and b <= workers
            assert pool.counters["pool.spawns"] == 1

    def test_empty_batch_never_spawns(self):
        with WorkerPool() as pool:
            assert pool.map(_double, []) == []
            assert not pool.alive and pool.counters == {}

    def test_degenerate_batch_runs_inline(self):
        with WorkerPool() as pool:
            assert pool.map(_double, [21], max_workers=2) == [42]
            assert not pool.alive and pool.counters == {}
            assert pool.map(_double, [1, 2, 3], max_workers=1) == [2, 4, 6]
            assert not pool.alive

    def test_live_pool_serves_single_items(self):
        with WorkerPool() as pool:
            pool.map(_double, [1, 2], max_workers=2)
            # once spawned, even a one-item batch goes to the warm workers
            assert pool.map(_worker_pid, [0], max_workers=2) != [os.getpid()]
            assert pool.counters["pool.spawns"] == 1

    def test_task_failures_keep_the_map_ordered_contract(self):
        with WorkerPool() as pool:
            with pytest.raises(ValueError, match="boom"):
                pool.map(_boom, [1, 2], max_workers=2)
            # a genuine task failure is not a crash: no respawn, pool alive
            assert "pool.respawns" not in pool.counters
            assert pool.alive
            assert pool.map(_double, [5, 6], max_workers=2) == [10, 12]

    def test_concurrent_batches_share_one_executor(self):
        # batches from different threads overlap on the shared executor
        # (a serving workload) instead of serialising or spawning pools
        import threading

        with WorkerPool() as pool:
            pool.map(_double, [0, 1], max_workers=2)
            results = {}

            def go(key, base):
                results[key] = pool.map(
                    _double, [base + i for i in range(6)], max_workers=2
                )

            threads = [
                threading.Thread(target=go, args=("a", 0)),
                threading.Thread(target=go, args=("b", 100)),
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert results["a"] == [2 * i for i in range(6)]
            assert results["b"] == [2 * (100 + i) for i in range(6)]
            assert pool.counters["pool.spawns"] == 1

    def test_unpinned_pools_size_to_the_machine_not_the_batch(self, monkeypatch):
        import repro.api.executor as executor

        monkeypatch.setattr(
            executor.os,
            "sched_getaffinity",
            lambda pid: set(range(4)),
            raising=False,
        )
        with WorkerPool() as pool:
            assert pool.map(_double, [1, 2]) == [2, 4]
            assert pool.size == 4  # machine width, not batch width
            # a larger batch therefore never forces a cache-discarding
            # resize of an unpinned pool
            assert pool.map(_double, list(range(6))) == [0, 2, 4, 6, 8, 10]
            assert pool.counters["pool.spawns"] == 1
            assert "pool.resizes" not in pool.counters

    def test_inline_degenerate_path_worker_session_is_bounded(
        self, monkeypatch
    ):
        import repro.api.executor as executor

        monkeypatch.setattr(executor, "_WORKER_SESSION", None)
        with WorkerPool(max_cache_entries=5) as pool:
            # single item, no live executor: runs inline on the shared
            # parent-side worker session, which carries the module-default
            # bound (a pool-specific bound is deliberately not installed —
            # the session is process-wide, so the first pool's would win
            # for every later one)
            bound = pool.map(_worker_cache_bound, [0], max_workers=2)
            assert bound == [DEFAULT_WORKER_CACHE_ENTRIES]
            assert not pool.alive

    def test_grow_replaces_the_executor(self):
        with WorkerPool() as pool:
            pool.map(_double, [1, 2], max_workers=2)
            pool.map(_double, [1, 2, 3], max_workers=3)
            assert pool.size == 3
            assert pool.counters["pool.resizes"] == 1
            # shrinking requests reuse the larger executor
            pool.map(_double, [1], max_workers=2)
            assert pool.size == 3

    def test_grow_requests_defer_while_another_batch_is_active(self):
        # replacing the executor cancels in-flight futures, so a grow
        # request racing a running batch must reuse the narrower pool
        import threading

        with WorkerPool() as pool:
            pool.map(_double, [0, 1], max_workers=2)
            out = {}

            def slow_batch():
                out["a"] = pool.map(_slow_double, list(range(6)), max_workers=2)

            t = threading.Thread(target=slow_batch)
            t.start()
            time.sleep(0.2)  # land mid-batch (each item sleeps 0.15s)
            out["b"] = pool.map(_double, [5, 6, 7], max_workers=4)
            t.join()
            assert out["a"] == [0, 2, 4, 6, 8, 10]
            assert out["b"] == [10, 12, 14]
            assert "pool.resizes" not in pool.counters
            assert pool.size == 2


class TestCrashRecovery(object):
    def test_killed_worker_respawns_and_batch_completes(self, tmp_path):
        sentinel = str(tmp_path / "killed-once")
        items = [(i, None) for i in range(4)] + [(9, sentinel), (5, None)]
        with WorkerPool() as pool:
            results = pool.map(_kill_once, items, max_workers=2)
            assert results == [0, 2, 4, 6, 18, 10]
            assert pool.counters["pool.respawns"] == 1
            assert pool.counters["pool.retried_items"] >= 1
            # the pool stays serviceable after recovery
            assert pool.map(_double, [7], max_workers=2) == [14]

    def test_second_break_propagates(self):
        with WorkerPool() as pool:
            pool.map(_double, [1, 2], max_workers=2)  # bring the pool up
            with pytest.raises(BrokenProcessPool):
                pool.map(_kill_always, [(1, None)], max_workers=2)
            assert pool.counters["pool.respawns"] == 1
            # a crash loop is reported, not retried forever -- but the
            # pool itself recovers for the next batch
            assert pool.map(_double, [3], max_workers=2) == [6]

    def test_killed_idle_workers_recover_on_the_next_batch(self):
        with WorkerPool() as pool:
            pids = set(pool.map(_worker_pid, range(8), max_workers=2))
            for pid in pids:
                os.kill(pid, signal.SIGKILL)
            time.sleep(0.2)  # let the executor notice its dead children
            assert pool.map(_double, [1, 2, 3, 4], max_workers=2) == [2, 4, 6, 8]
            assert pool.counters["pool.respawns"] == 1


class TestLifecycle(object):
    def test_close_is_idempotent_and_final(self):
        pool = WorkerPool()
        pool.map(_double, [1, 2], max_workers=2)
        pool.close()
        pool.close()
        assert pool.closed and not pool.alive
        with pytest.raises(RuntimeError, match="closed"):
            pool.map(_double, [1, 2], max_workers=2)

    def test_close_drains_in_flight_batches(self):
        # tearing the executor down under a running batch can abandon its
        # futures unresolved; close() must wait for it instead
        import threading

        pool = WorkerPool()
        pool.map(_double, [1, 2], max_workers=2)
        out = {}

        def batch():
            out["results"] = pool.map(
                _slow_double, list(range(6)), max_workers=2
            )

        t = threading.Thread(target=batch)
        t.start()
        time.sleep(0.2)  # land mid-batch
        pool.close()  # returns only after the batch drained
        t.join(timeout=5.0)
        assert not t.is_alive()
        assert out["results"] == [0, 2, 4, 6, 8, 10]
        assert pool.closed and not pool.alive

    def test_idle_timeout_reaps_and_respawns(self):
        with WorkerPool(idle_timeout=0.2) as pool:
            pool.map(_double, [1, 2], max_workers=2)
            assert pool.alive
            deadline = time.time() + 5.0
            while pool.alive and time.time() < deadline:
                time.sleep(0.05)
            assert not pool.alive
            assert pool.counters["pool.idle_teardowns"] == 1
            # the next batch simply spawns a fresh executor
            assert pool.map(_double, [3, 4], max_workers=2) == [6, 8]
            assert pool.counters["pool.spawns"] == 2

    def test_rejects_non_positive_idle_timeout(self):
        with pytest.raises(ValueError):
            WorkerPool(idle_timeout=0)

    def test_workers_get_a_bounded_session_cache(self):
        with WorkerPool() as pool:
            bounds = pool.map(_worker_cache_bound, [0, 1, 2, 3], max_workers=2)
            assert set(bounds) == {DEFAULT_WORKER_CACHE_ENTRIES}
        with WorkerPool(max_cache_entries=7) as pool:
            bounds = pool.map(_worker_cache_bound, [0, 1], max_workers=2)
            assert set(bounds) == {7}


class TestSessionOwnedPool(object):
    def test_one_pool_across_consecutive_infer_many_calls(self):
        with Session(backend="process") as session:
            half = len(OLDEN_SOURCES) // 2
            session.infer_many(OLDEN_SOURCES[:half], max_workers=2)
            session.infer_many(OLDEN_SOURCES[half:], max_workers=2)
            assert session.stats.event_count("pool.spawns") == 1
            assert session.stats.event_count("pool.respawns") == 0

    def test_persistent_pool_matches_fresh_pool_byte_for_byte(self):
        # differential: a pool reused across two batches must return the
        # same renumbered targets as a fresh session (and fresh pool)
        with Session() as warm:
            first = warm.infer_many(
                OLDEN_SOURCES, backend="process", max_workers=2
            )
            warm.clear_cache()  # force re-inference through the warm pool
            second = warm.infer_many(
                OLDEN_SOURCES, backend="process", max_workers=2
            )
            assert warm.stats.event_count("pool.spawns") == 1
        with Session() as fresh:
            baseline = fresh.infer_many(
                OLDEN_SOURCES, backend="process", max_workers=2
            )
        for a, b, c in zip(first, second, baseline):
            assert pretty_target(a.target) == pretty_target(b.target)
            assert pretty_target(a.target) == pretty_target(c.target)

    def test_batch_survives_killed_workers_identically_to_threads(self):
        # kill every pool worker between two batches: the next batch must
        # respawn, retry, and return results identical to the thread
        # backend's
        thread = Session().infer_many(OLDEN_SOURCES, max_workers=2)
        with Session() as session:
            session.infer_many(OLDEN_SOURCES[:2], backend="process", max_workers=2)
            executor = session.process_pool()._executor
            for pid in list(executor._processes):
                os.kill(pid, signal.SIGKILL)
            time.sleep(0.2)
            session.clear_cache()
            results = session.infer_many(
                OLDEN_SOURCES, backend="process", max_workers=2
            )
            assert session.stats.event_count("pool.respawns") == 1
            for r, t in zip(results, thread):
                assert pretty_target(r.target) == pretty_target(t.target)

    def test_single_items_ride_the_warm_pool(self):
        # degenerate batches only run inline while no pool is alive; once
        # workers are warm, even a one-source batch ships to them
        with Session(backend="process") as session:
            session.infer_many(OLDEN_SOURCES[:2], max_workers=2)
            before = session.stats.miss_count("worker.infer")
            session.infer_many([OLDEN_SOURCES[2]], max_workers=2)
            assert session.stats.miss_count("worker.infer") == before + 1
            assert session.stats.event_count("pool.spawns") == 1

    def test_close_releases_and_next_batch_respawns(self):
        session = Session(backend="process")
        session.infer_many(OLDEN_SOURCES[:2], max_workers=2)
        pool = session.process_pool()
        session.close()
        assert pool.closed
        # the session stays usable: stats and cache survive, and a new
        # batch brings up a new pool
        session.clear_cache()
        session.infer_many(OLDEN_SOURCES[:2], max_workers=2)
        assert session.stats.event_count("pool.spawns") == 2
        session.close()

    def test_context_manager_closes_the_pool(self):
        with Session(backend="process") as session:
            session.infer_many(OLDEN_SOURCES[:2], max_workers=2)
            pool = session.process_pool()
            assert pool.alive
        assert pool.closed

    def test_close_without_pool_is_a_noop(self):
        session = Session()
        session.close()  # nothing spawned: nothing to do, no error
        assert session.stats.event_count("pool.spawns") == 0

    def test_session_pool_idle_timeout_knob(self):
        with Session(backend="process", pool_idle_timeout=0.2) as session:
            session.infer_many(OLDEN_SOURCES[:2], max_workers=2)
            pool = session.process_pool()
            deadline = time.time() + 5.0
            while pool.alive and time.time() < deadline:
                time.sleep(0.05)
            assert not pool.alive
            assert session.stats.event_count("pool.idle_teardowns") == 1
