"""Tests for batch inference: ordering, determinism, error handling."""

import pytest

from repro.api import Session, StageFailure
from repro.checking import check_target

#: ten distinguishable programs — main(n) returns n + i
PROGRAMS = [
    f"""
class Box extends Object {{ int v; }}
int main(int n) {{
  Box b = new Box(n + {i});
  b.v
}}
"""
    for i in range(10)
]

BAD = "class Broken extends Object { int"


def _fingerprint(result):
    """Structural identity of an inference result, stable across runs.

    Region uids come from a global counter, so textual output is not
    comparable between executions; the structure (methods, their region
    arities, letreg counts) is.
    """
    return {
        qualified: (len(scheme.region_params), result.localized_regions[qualified])
        for qualified, scheme in result.schemes.items()
        if qualified in result.localized_regions
    }


class TestOrdering(object):
    def test_results_in_input_order(self):
        session = Session()
        results = session.infer_many(PROGRAMS)
        assert len(results) == len(PROGRAMS)
        # run each program: result i must compute n + i
        for i, result in enumerate(results):
            execution = session.pipeline(PROGRAMS[i]).execute("main", [100])
            assert str(execution.unwrap().value) == str(100 + i)
            assert check_target(result.target).ok

    def test_duplicates_resolve_to_the_cached_result(self):
        session = Session()
        results = session.infer_many([PROGRAMS[0]] * 4, max_workers=1)
        assert all(r is results[0] for r in results)
        assert session.stats.miss_count("infer") == 1
        assert session.stats.hit_count("infer") == 3

    def test_empty_batch(self):
        assert Session().infer_many([]) == []


class TestDeterminism(object):
    def test_parallel_matches_sequential(self):
        parallel = Session().infer_many(PROGRAMS, max_workers=4)
        sequential = Session().infer_many(PROGRAMS, max_workers=1)
        for p, s in zip(parallel, sequential):
            assert _fingerprint(p) == _fingerprint(s)

    def test_two_parallel_runs_agree(self):
        a = Session().infer_many(PROGRAMS, max_workers=4)
        b = Session().infer_many(PROGRAMS, max_workers=4)
        for x, y in zip(a, b):
            assert _fingerprint(x) == _fingerprint(y)


class TestErrors(object):
    def test_bad_program_raises_stage_failure(self):
        session = Session()
        with pytest.raises(StageFailure):
            session.infer_many([PROGRAMS[0], BAD, PROGRAMS[1]])

    def test_run_many_reports_per_program(self):
        session = Session()
        outcomes = session.run_many([PROGRAMS[0], BAD, PROGRAMS[1]])
        assert [o[-1].ok for o in outcomes] == [True, False, True]
        failed = outcomes[1][-1]
        assert failed.stage == "parse"
        assert failed.diagnostics[0].code == "parse-error"
