"""The process executor backend: differential equivalence, caching, stats.

The process pool forces the whole artifact layer through pickle and runs
inference under per-worker region-uid namespaces; these tests pin that the
results are *indistinguishable* from the thread backend's — same renumbered
target text, same structure — and that the parent session's cache and stats
behave identically.  ``max_workers=2`` is forced throughout so the pool
actually spawns workers even on a single-core machine.
"""

import pytest

from repro.api import Session, StageFailure, resolve_backend
from repro.bench.olden import OLDEN_PROGRAMS
from repro.checking import check_target
from repro.lang.pretty import pretty_target

OLDEN_SOURCES = [program.source for program in OLDEN_PROGRAMS.values()]

BAD = "class Broken extends Object { int"

SMALL = [
    f"""
class Box extends Object {{ int v; }}
int main(int n) {{
  Box b = new Box(n + {i});
  b.v
}}
"""
    for i in range(4)
]


class TestDifferential(object):
    def test_process_matches_thread_on_the_olden_suite(self):
        thread = Session().infer_many(OLDEN_SOURCES, max_workers=2)
        process = Session().infer_many(
            OLDEN_SOURCES, backend="process", max_workers=2
        )
        assert len(process) == len(thread)
        for t, p in zip(thread, process):
            assert p.fingerprint() == t.fingerprint()
            # byte-identical once regions are renumbered in first-use order
            assert pretty_target(p.target) == pretty_target(t.target)

    def test_process_results_verify(self):
        results = Session().infer_many(
            OLDEN_SOURCES, backend="process", max_workers=2
        )
        for result in results:
            assert check_target(result.target).ok

    def test_worker_uids_never_collide_across_results(self):
        # every worker mints uids in a private namespace, so the variable
        # regions of different programs' results are pairwise disjoint even
        # though each worker's counter started fresh
        results = Session().infer_many(SMALL, backend="process", max_workers=2)
        uid_sets = []
        for result in results:
            uids = set()
            for c in result.target.classes:
                uids.update(r.uid for r in c.regions if not (r.is_heap or r.is_null))
            for m in result.target.all_methods():
                uids.update(
                    r.uid for r in m.region_params if not (r.is_heap or r.is_null)
                )
            uid_sets.append(uids)
        for i in range(len(uid_sets)):
            for j in range(i + 1, len(uid_sets)):
                assert not (uid_sets[i] & uid_sets[j])


class TestParentCache(object):
    def test_results_land_in_the_parent_cache(self):
        session = Session()
        first = session.infer_many(SMALL, backend="process", max_workers=2)
        assert session.stats.miss_count("infer") == len(SMALL)
        second = session.infer_many(SMALL, backend="process", max_workers=2)
        assert all(a is b for a, b in zip(first, second))
        assert session.stats.hit_count("infer") == len(SMALL)
        # the hit path must not re-parse anything in the parent
        assert session.stats.miss_count("parse") == 0

    def test_duplicates_collapse_to_one_inference(self, monkeypatch):
        # four copies of one source leave a single pending unique: the
        # degenerate pool is skipped and the work runs on this session
        # directly (no hidden worker session left behind in the parent)
        import repro.api.executor as executor

        monkeypatch.setattr(executor, "_WORKER_SESSION", None)
        session = Session()
        results = session.infer_many(
            [SMALL[0]] * 4, backend="process", max_workers=2
        )
        assert all(r is results[0] for r in results)
        assert session.stats.miss_count("infer") == 1
        assert session.stats.hit_count("infer") == 3
        assert session.stats.miss_count("worker.infer") == 0
        assert executor._WORKER_SESSION is None

    def test_worker_stats_merge_under_worker_prefix(self):
        session = Session()
        session.infer_many(SMALL, backend="process", max_workers=2)
        for kind in ("parse", "typecheck", "annotate", "infer"):
            assert session.stats.miss_count(f"worker.{kind}") == len(SMALL)

    def test_thread_session_sees_process_results(self):
        # backend choice is per call; the cache is one store
        session = Session()
        (result,) = session.infer_many([SMALL[0]], backend="process", max_workers=2)
        assert session.infer(SMALL[0]) is result


class TestFailures(object):
    def test_failure_names_the_real_stage(self):
        with pytest.raises(StageFailure) as exc:
            Session().infer_many(
                [SMALL[0], BAD], backend="process", max_workers=2
            )
        assert exc.value.stage == "parse"
        assert exc.value.diagnostics[0].code == "parse-error"

    def test_earliest_failure_in_input_order_wins(self):
        bad_type = "class A extends Object { int x; }\nint main(int n) { new A(true).x }"
        with pytest.raises(StageFailure) as exc:
            Session().infer_many(
                [bad_type, BAD], backend="process", max_workers=2
            )
        assert exc.value.stage == "typecheck"

    def test_return_exceptions_reports_per_program(self):
        outcomes = Session().infer_many(
            [SMALL[0], BAD, SMALL[1]],
            backend="process",
            max_workers=2,
            return_exceptions=True,
        )
        assert [isinstance(o, StageFailure) for o in outcomes] == [
            False,
            True,
            False,
        ]
        assert outcomes[1].stage == "parse"

    def test_return_exceptions_thread_parity(self):
        outcomes = Session().infer_many(
            [SMALL[0], BAD, SMALL[1]], max_workers=2, return_exceptions=True
        )
        assert [isinstance(o, StageFailure) for o in outcomes] == [
            False,
            True,
            False,
        ]
        assert outcomes[1].stage == "parse"

    def test_failures_do_not_poison_the_cache(self):
        session = Session()
        session.infer_many(
            [BAD], backend="process", max_workers=2, return_exceptions=True
        )
        assert session.cache_size == 0


class TestBackendSelection(object):
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            Session().infer_many(SMALL, backend="fibers")

    def test_auto_resolution_is_core_and_batch_aware(self, monkeypatch):
        import repro.api.executor as executor

        # the CPU allowance is the affinity mask where the platform has
        # one (available_cpus), not the raw machine core count
        monkeypatch.setattr(
            executor.os,
            "sched_getaffinity",
            lambda pid: set(range(8)),
            raising=False,
        )
        assert resolve_backend("auto", 10) == "process"
        assert resolve_backend("auto", 1) == "thread"
        monkeypatch.setattr(
            executor.os, "sched_getaffinity", lambda pid: {0}, raising=False
        )
        assert resolve_backend("auto", 10) == "thread"
        assert resolve_backend(None, 10) == "thread"

    def test_session_default_backend(self):
        session = Session(backend="process")
        results = session.infer_many(SMALL[:2], max_workers=2)
        assert len(results) == 2
        # worker-side traffic proves the batch really went to the pool
        assert session.stats.miss_count("worker.infer") == 2


class TestHarnessFanout(object):
    def test_fig9_rows_process_matches_thread(self):
        from repro.bench import fig9_rows

        names = ["bisort", "treeadd"]
        thread = fig9_rows(names=names)
        process = fig9_rows(names=names, backend="process", max_workers=2)
        assert [r.name for r in process] == [r.name for r in thread]
        assert [r.annotation_lines for r in process] == [
            r.annotation_lines for r in thread
        ]
        assert [r.source_lines for r in process] == [
            r.source_lines for r in thread
        ]

    def test_fig9_rows_process_honours_the_session_config(self):
        # regression: the process path used to infer under the worker's
        # default config, silently ignoring the caller's session config
        from repro.bench import fig9_rows
        from repro.core import InferenceConfig

        config = InferenceConfig(minimize_pre=False)
        session = Session(config)
        thread = fig9_rows(names=["treeadd"], session=session)
        process = fig9_rows(
            names=["treeadd"],
            session=Session(config),
            backend="process",
            max_workers=2,
        )
        assert process[0].annotation_lines == thread[0].annotation_lines

    def test_fig9_task_infers_under_the_shipped_config(self):
        from repro.bench.harness import _fig9_task
        from repro.core import InferenceConfig

        config = InferenceConfig(minimize_pre=False)
        source = OLDEN_PROGRAMS["treeadd"].source
        result, report = _fig9_task((source, config))
        assert result.config == config
        assert report.ok

    def test_fig8_rows_process_matches_thread(self):
        from repro.bench import fig8_rows

        names = ["sieve", "mergesort"]
        thread = fig8_rows(names=names, quick=True)
        process = fig8_rows(
            names=names, quick=True, backend="process", max_workers=2
        )
        assert [r.name for r in process] == [r.name for r in thread]
        for t, p in zip(thread, process):
            assert p.ratios == t.ratios
            assert p.localized == t.localized
            assert p.annotation_lines == t.annotation_lines
