"""Tests for the staged pipeline: stage values, short-circuiting, collect."""

import pytest

from repro.api import STAGES, Pipeline, StageFailure, Severity
from repro.api.diagnostics import DiagnosticCode
from repro.core import (
    AnnotatedProgram,
    DowncastStrategy,
    InferenceConfig,
    InferenceResult,
)
from repro.lang import ast as S
from repro.lang.class_table import ClassTable

GOOD = """
class Pair extends Object {
  Object fst;
  Object snd;
  Pair cloneRev() { Pair tmp = new Pair(null, null); tmp.fst = snd; tmp.snd = fst; tmp }
}
int main(int n) { Pair p = new Pair(null, null); Pair q = p.cloneRev(); n }
"""

#: missing ';' after the field on line 2
BAD_PARSE = "class A extends Object {\n  int x\n}\nint main() { 0 }"

#: `Missing` is never declared
BAD_TYPE = "int main() { Missing m = null; 0 }"

#: a genuine downcast, rejected under DowncastStrategy.REJECT
DOWNCAST = """
class A extends Object { int x; }
class B extends A { Object y; }
int main() { A a = new B(1, null); B b = (B) a; b.x }
"""


class TestStageValues(object):
    def test_stage_types(self):
        pipe = Pipeline(GOOD)
        assert isinstance(pipe.parse().unwrap(), S.Program)
        assert isinstance(pipe.typecheck().unwrap(), ClassTable)
        assert isinstance(pipe.annotate().unwrap(), AnnotatedProgram)
        assert isinstance(pipe.infer().unwrap(), InferenceResult)
        assert pipe.verify().unwrap().ok
        assert str(pipe.execute("main", [7]).unwrap().value) == "7"

    def test_stages_memoised_within_pipeline(self):
        pipe = Pipeline(GOOD)
        assert pipe.infer() is pipe.infer()
        assert pipe.parse() is pipe.parse()

    def test_run_until_stops_early(self):
        pipe = Pipeline(GOOD)
        results = pipe.run("typecheck")
        assert [r.stage for r in results] == ["parse", "typecheck"]
        assert all(r.ok for r in results)
        # inference was never triggered
        assert "infer" not in pipe._results

    def test_run_until_execute(self):
        pipe = Pipeline(GOOD)
        results = pipe.run("execute", entry="main", args=[3])
        assert [r.stage for r in results] == list(STAGES)
        assert str(results[-1].value.value) == "3"

    def test_run_rejects_unknown_stage(self):
        with pytest.raises(ValueError):
            Pipeline(GOOD).run("link")


class TestShortCircuit(object):
    def test_parse_error_stops_run(self):
        pipe = Pipeline(BAD_PARSE)
        results = pipe.run("verify")
        assert [r.stage for r in results] == ["parse"]
        (diag,) = results[0].diagnostics
        assert diag.code == DiagnosticCode.PARSE
        assert diag.severity is Severity.ERROR
        assert diag.span == {"line": 3, "col": 1}

    def test_later_stages_skip_after_failure(self):
        pipe = Pipeline(BAD_PARSE)
        infer = pipe.infer()
        assert not infer.ok
        assert infer.skipped
        with pytest.raises(StageFailure):
            infer.unwrap()

    def test_skipped_unwrap_blames_the_root_cause(self):
        pipe = Pipeline(BAD_PARSE)
        infer = pipe.infer()
        assert infer.cause is not None and infer.cause.stage == "parse"
        with pytest.raises(StageFailure) as exc:
            infer.unwrap()
        assert exc.value.stage == "parse"
        assert exc.value.diagnostics == pipe.parse().diagnostics

    def test_failure_helper_finds_the_failing_stage(self):
        pipe = Pipeline(BAD_PARSE)
        assert pipe.failure() is None  # nothing ran yet
        pipe.infer()
        failed = pipe.failure()
        assert failed is not None
        assert failed.stage == "parse" and not failed.skipped

        ok = Pipeline(GOOD)
        ok.run("verify")
        assert ok.failure() is None

    def test_type_error_carries_span(self):
        pipe = Pipeline(BAD_TYPE, filename="t.cj")
        results = pipe.run("verify")
        assert [r.stage for r in results] == ["parse", "typecheck"]
        (diag,) = results[-1].diagnostics
        assert diag.code == DiagnosticCode.NORMAL_TYPE
        assert diag.file == "t.cj"
        assert diag.line == 1

    def test_inference_error_is_structured(self):
        config = InferenceConfig(downcast=DowncastStrategy.REJECT)
        pipe = Pipeline(DOWNCAST, config)
        results = pipe.run("verify")
        assert [r.stage for r in results] == [
            "parse",
            "typecheck",
            "annotate",
            "infer",
        ]
        (diag,) = results[-1].diagnostics
        assert diag.code == DiagnosticCode.INFERENCE
        assert "downcast" in diag.message
        # earlier stages still produced values
        assert results[2].ok

    def test_same_pipeline_downcast_accepted_with_padding(self):
        pipe = Pipeline(DOWNCAST, InferenceConfig())
        assert pipe.verify().ok
        assert str(pipe.execute("main", []).unwrap().value) == "1"


class TestCollectMode(object):
    def test_collects_multiple_parse_errors(self):
        source = (
            "class A extends Object { int x }\n"
            "class B extends Object { int y }\n"
            "int main() { 0 }\n"
        )
        pipe = Pipeline(source, collect=True)
        result = pipe.parse()
        assert not result.ok
        assert len(result.diagnostics) == 2
        assert [d.line for d in result.diagnostics] == [1, 2]
        # the recovered program still holds the parseable declarations
        assert [m.name for m in result.value.statics] == ["main"]

    def test_lex_error_code_is_stable_across_modes(self):
        source = "int main() { @ }"
        strict = Pipeline(source).parse()
        tolerant = Pipeline(source, collect=True).parse()
        assert strict.diagnostics[0].code == DiagnosticCode.LEX
        assert tolerant.diagnostics[0].code == DiagnosticCode.LEX
        assert tolerant.diagnostics[0].span == strict.diagnostics[0].span

    def test_collect_on_valid_source_is_clean(self):
        pipe = Pipeline(GOOD, collect=True)
        assert pipe.verify().ok
        assert pipe.diagnostics() == []

    def test_diagnostics_aggregates_in_stage_order(self):
        pipe = Pipeline(BAD_PARSE, collect=True)
        pipe.run("verify")
        diags = pipe.diagnostics()
        assert diags and all(d.stage == "parse" for d in diags)


class TestExecuteStage(object):
    def test_runtime_error_becomes_diagnostic(self):
        pipe = Pipeline(GOOD)
        result = pipe.execute("nosuch", [])
        assert not result.ok
        (diag,) = result.diagnostics
        assert diag.code == DiagnosticCode.RUNTIME
        assert "nosuch" in diag.message

    def test_execute_memoised_per_entry_and_args(self):
        pipe = Pipeline(GOOD)
        assert pipe.execute("main", [1]) is pipe.execute("main", [1])
        assert pipe.execute("main", [1]) is not pipe.execute("main", [2])
