"""Stats-accounting regressions: failed builds, eviction rendering, events.

Two bugs pinned here:

* a builder that raised inside the cached stage path never called
  ``SessionStats.record``, so failing programs were invisible in hit/miss
  accounting and hit-rate ratios over-reported;
* ``SessionStats.__str__`` derived its kind list from hits|misses only,
  so a kind that only ever evicted was silently dropped and per-kind
  eviction counts were never shown.
"""

import pytest

from repro.api import Session, SessionStats, StageFailure

BAD = "class Broken extends Object { int"
BAD_TYPE = (
    "class A extends Object { int x; }\nint main(int n) { new A(true).x }"
)


class TestFailedBuildsAreMisses(object):
    def test_two_failing_parses_are_two_parse_misses(self):
        session = Session()
        for _ in range(2):
            with pytest.raises(StageFailure):
                session.infer(BAD)
        # failures are not cached, so each attempt is a real miss
        assert session.stats.miss_count("parse") == 2
        assert session.stats.hit_count("parse") == 0

    def test_failing_typecheck_is_a_miss_after_a_parse_miss(self):
        session = Session()
        with pytest.raises(StageFailure):
            session.infer(BAD_TYPE)
        assert session.stats.miss_count("parse") == 1  # parse succeeded
        assert session.stats.miss_count("typecheck") == 1  # build raised
        with pytest.raises(StageFailure):
            session.infer(BAD_TYPE)
        assert session.stats.hit_count("parse") == 1  # parse was cached
        assert session.stats.miss_count("typecheck") == 2

    def test_successful_builds_record_exactly_one_miss(self):
        session = Session()
        session.infer("class C extends Object { int v; }\nint main(int n) { n }")
        assert session.stats.miss_count("parse") == 1


class TestStatsRendering(object):
    def test_eviction_only_kinds_are_shown(self):
        stats = SessionStats()
        stats.record("infer", hit=False)
        stats.record_eviction("parse")  # evicted, never hit or missed here
        text = str(stats)
        assert "parse" in text
        assert "1 eviction(s)" in text

    def test_per_kind_eviction_counts_are_shown(self):
        stats = SessionStats()
        stats.record("parse", hit=False)
        stats.record_eviction("parse")
        stats.record_eviction("parse")
        stats.record_eviction("infer")
        text = str(stats)
        assert "parse: 0 hit(s) / 1 miss(es) / 2 eviction(s)" in text
        assert "infer: 0 hit(s) / 0 miss(es) / 1 eviction(s)" in text

    def test_empty_stats_still_render(self):
        assert str(SessionStats()) == "no cache traffic"


class TestEvents(object):
    def test_record_and_count(self):
        stats = SessionStats()
        stats.record_event("pool.spawns")
        stats.record_event("pool.retried_items", 3)
        assert stats.event_count("pool.spawns") == 1
        assert stats.event_count("pool.retried_items") == 3
        assert stats.event_count() == 4
        assert stats.event_count("pool.respawns") == 0

    def test_events_round_trip_as_dict_and_merge(self):
        stats = SessionStats()
        stats.record_event("pool.spawns")
        snapshot = stats.as_dict()
        assert snapshot["events"] == {"pool.spawns": 1}
        other = SessionStats()
        other.merge(snapshot)
        assert other.event_count("pool.spawns") == 1

    def test_events_render(self):
        stats = SessionStats()
        stats.record_event("pool.spawns", 2)
        assert "pool.spawns: 2" in str(stats)
