"""Golden tests for ``python -m repro ... --format json`` output."""

import json

import pytest

from repro.__main__ import main

PROGRAM = """
class Box extends Object { int v; }
int main(int n) {
  int i = 0;
  int acc = 0;
  while (i < n) {
    Box t = new Box(i);
    acc = acc + t.v;
    i = i + 1;
  }
  acc
}
"""

#: ';' missing after the field of Box — error lands on line 2, column 33
BAD = "// broken\nclass Box extends Object { int v }\nint main() { 0 }\n"


@pytest.fixture()
def source_file(tmp_path):
    path = tmp_path / "prog.cj"
    path.write_text(PROGRAM)
    return str(path)


@pytest.fixture()
def bad_file(tmp_path):
    path = tmp_path / "bad.cj"
    path.write_text(BAD)
    return str(path)


def run_json(capsys, argv):
    code = main(argv)
    return code, json.loads(capsys.readouterr().out)


class TestCheckJson(object):
    def test_ok_payload(self, source_file, capsys):
        code, payload = run_json(capsys, ["check", source_file, "--format", "json"])
        assert code == 0
        assert payload["ok"] is True
        assert payload["command"] == "check"
        assert payload["file"] == source_file
        assert isinstance(payload["obligations"], int)
        assert payload["diagnostics"] == []

    def test_parse_error_payload_is_golden(self, bad_file, capsys):
        code, payload = run_json(capsys, ["check", bad_file, "--format", "json"])
        assert code == 2
        assert payload == {
            "ok": False,
            "command": "check",
            "diagnostics": [
                {
                    "severity": "error",
                    "stage": "parse",
                    "code": "parse-error",
                    "message": "expected ';' or '(' after member 'v'",
                    "file": bad_file,
                    "span": {"line": 2, "col": 34},
                }
            ],
        }

    def test_all_modes_emit_json(self, source_file, capsys):
        for mode in ("none", "object", "field"):
            code, payload = run_json(
                capsys, ["check", source_file, "--mode", mode, "--format", "json"]
            )
            assert code == 0 and payload["ok"] is True


class TestInferJson(object):
    def test_target_and_stats(self, source_file, capsys):
        code, payload = run_json(capsys, ["infer", source_file, "--format", "json"])
        assert code == 0
        assert payload["ok"] is True
        assert "letreg" in payload["target"]
        assert "Box<" in payload["target"]
        stats = payload["stats"]
        assert stats["inference_seconds"] > 0
        assert stats["localized_regions"] >= 1
        assert set(stats["stage_seconds"]) == {
            "parse",
            "typecheck",
            "annotate",
            "infer",
        }
        assert "q" not in payload

    def test_show_q(self, source_file, capsys):
        code, payload = run_json(
            capsys, ["infer", source_file, "--show-q", "--format", "json"]
        )
        assert code == 0
        assert any(line.startswith("inv.Box") for line in payload["q"])


class TestRunJson(object):
    def test_result_and_stats(self, source_file, capsys):
        code, payload = run_json(
            capsys, ["run", source_file, "--args", "10", "--format", "json"]
        )
        assert code == 0
        assert payload["result"] == "45"
        assert payload["entry"] == "main"
        assert payload["args"] == [10]
        assert payload["stats"]["objects_allocated"] == 10
        assert 0 < payload["stats"]["space_usage_ratio"] <= 1.0

    def test_missing_entry_is_a_runtime_diagnostic(self, source_file, capsys):
        code, payload = run_json(
            capsys,
            ["run", source_file, "--entry", "nosuch", "--format", "json"],
        )
        assert code == 2
        assert payload["diagnostics"][0]["code"] == "runtime-error"


class TestReportJson(object):
    def test_report_shape(self, source_file, capsys):
        code, payload = run_json(capsys, ["report", source_file, "--format", "json"])
        assert code == 0
        report = payload["report"]
        assert [c["name"] for c in report["classes"]] == ["Box"]
        (method,) = report["methods"]
        assert method["qualified"] == "main"
        assert method["letregs"] == report["totals"]["letregs"] >= 1


class TestTextErrorPaths(object):
    def test_parse_error_exit_2_with_location(self, bad_file, capsys):
        assert main(["infer", bad_file]) == 2
        err = capsys.readouterr().err
        assert f"{bad_file}:2:34" in err
        assert "parse-error" in err

    def test_missing_file_exit_2(self, tmp_path, capsys):
        assert main(["check", str(tmp_path / "nope.cj")]) == 2
        assert "io-error" in capsys.readouterr().err

    def test_collect_reports_every_declaration(self, tmp_path, capsys):
        path = tmp_path / "multi.cj"
        path.write_text(
            "class A extends Object { int x }\n"
            "class B extends Object { int y }\n"
            "int main() { 0 }\n"
        )
        code, payload = run_json(
            capsys, ["check", str(path), "--collect", "--format", "json"]
        )
        assert code == 2
        assert len(payload["diagnostics"]) == 2
