"""Shared pools: refcounting, single-item dispatch, elastic width.

The serving daemon attaches many sessions to one ``WorkerPool``; these
tests pin the contracts that makes safe — acquire/close refcounts, the
``run_one`` single-task path with its deadline, queue-depth-driven
``scale_to`` growth, and per-session attribution of ``pool.*`` events on
a pool the session does not own.  ``max_workers=2`` is forced so the
pool really spawns workers on a single-core machine.
"""

import time

import pytest

from repro.api import PoolTimeout, Session, WorkerPool
from repro.api.session import SessionStats


def _double(x):
    return x * 2


def _slow_double(x):
    time.sleep(5.0)
    return x * 2


class TestRefcounting(object):
    def test_acquire_close_pairs_keep_the_pool_alive(self):
        pool = WorkerPool(max_workers=2)
        assert pool.refs == 1
        assert pool.acquire() is pool
        assert pool.refs == 2
        pool.close()  # releases one ref; workers stay
        assert pool.refs == 1
        assert not pool.closed
        assert pool.map(_double, [1, 2]) == [2, 4]
        pool.close()
        assert pool.closed

    def test_acquire_after_close_is_refused(self):
        pool = WorkerPool(max_workers=2)
        pool.close()
        with pytest.raises(RuntimeError):
            pool.acquire()

    def test_sessions_share_one_pool_and_release_it(self):
        pool = WorkerPool(max_workers=2)
        a = Session(pool=pool)
        b = Session(pool=pool)
        assert pool.refs == 3
        assert a.process_pool() is pool
        assert b.process_pool() is pool
        a.close()
        b.close()
        assert pool.refs == 1
        assert not pool.closed
        pool.close()
        assert pool.closed

    def test_session_close_is_idempotent_on_a_shared_pool(self):
        pool = WorkerPool(max_workers=2)
        session = Session(pool=pool)
        session.close()
        session.close()
        assert pool.refs == 1
        pool.close()


class TestRunOne(object):
    def test_single_task_runs_on_the_pool(self):
        with WorkerPool(max_workers=2) as pool:
            assert pool.run_one(_double, 21) == 42
            assert pool.counters.get("pool.spawns", 0) == 1
            # a second task reuses the live executor
            assert pool.run_one(_double, 4) == 8
            assert pool.counters.get("pool.spawns", 0) == 1

    def test_deadline_miss_raises_pool_timeout(self):
        with WorkerPool(max_workers=2) as pool:
            pool.run_one(_double, 1)  # warm the pool: spawn cost not billed
            with pytest.raises(PoolTimeout):
                pool.run_one(_slow_double, 1, timeout=0.05)
            assert pool.counters.get("pool.timeouts", 0) == 1

    def test_timeout_abandons_the_wait_not_the_pool(self):
        with WorkerPool(max_workers=2) as pool:
            pool.run_one(_double, 1)
            with pytest.raises(PoolTimeout):
                pool.run_one(_slow_double, 2, timeout=0.05)
            # the pool still serves work afterwards
            assert pool.run_one(_double, 3) == 6


class TestElasticWidth(object):
    def test_width_for_respects_the_band(self):
        pool = WorkerPool(max_workers=4, min_workers=2)
        try:
            assert pool.width_for(0) == 2
            assert pool.width_for(1) == 2
            assert pool.width_for(3) == 3
            assert pool.width_for(99) == 4
        finally:
            pool.close()

    def test_scale_to_widens_a_live_executor(self):
        with WorkerPool(max_workers=4) as pool:
            pool.run_one(_double, 1)
            assert pool.size == 1
            pool.scale_to(3)
            assert pool.size == 3
            assert pool.counters.get("pool.grows", 0) == 1
            # scaling down is not done in place (the idle timer handles it)
            pool.scale_to(1)
            assert pool.size == 3

    def test_min_workers_validation(self):
        with pytest.raises(ValueError):
            WorkerPool(min_workers=-1)
        with pytest.raises(ValueError):
            WorkerPool(max_workers=2, min_workers=3)

    def test_idle_shrinks_to_min_workers_not_zero(self):
        pool = WorkerPool(max_workers=3, min_workers=1, idle_timeout=0.1)
        try:
            pool.map(_double, [1, 2, 3], max_workers=3)
            assert pool.size == 3
            deadline = time.monotonic() + 5.0
            while pool.size != 1 and time.monotonic() < deadline:
                time.sleep(0.05)
            assert pool.size == 1
            assert pool.alive  # shrunk, not torn down
            assert pool.counters.get("pool.shrinks", 0) >= 1
            assert pool.map(_double, [5]) == [10]
        finally:
            pool.close()


class TestAttribution(object):
    def test_shared_pool_events_land_on_the_caller_session(self):
        pool = WorkerPool(max_workers=2)
        stats = SessionStats()
        try:
            pool.run_one(_double, 1, stats=stats)
            assert stats.events.get("pool.spawns") == 1
            assert pool.counters.get("pool.spawns") == 1
        finally:
            pool.close()

    def test_owned_pool_does_not_double_count(self):
        stats = SessionStats()
        pool = WorkerPool(max_workers=2, stats=stats)
        try:
            # the default sink IS the caller's sink: one increment, not two
            pool.run_one(_double, 1, stats=stats)
            assert stats.events.get("pool.spawns") == 1
        finally:
            pool.close()
