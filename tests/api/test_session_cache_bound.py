"""Tests for the bounded (LRU) session artifact cache."""

import pytest

from repro.api import Session

PROGRAM_A = """
int main(int n) { n + 1 }
"""

PROGRAM_B = """
int main(int n) { n + 2 }
"""

PROGRAM_C = """
int main(int n) { n + 3 }
"""

#: cache entries one inference populates: parse, typecheck, annotate, infer
ENTRIES_PER_PROGRAM = 4


class TestBoundedCache:
    def test_unbounded_by_default(self):
        session = Session()
        for source in (PROGRAM_A, PROGRAM_B, PROGRAM_C):
            session.infer(source)
        assert session.stats.eviction_count() == 0
        assert session.cache_size == 3 * ENTRIES_PER_PROGRAM

    def test_eviction_keeps_cache_bounded(self):
        session = Session(max_cache_entries=ENTRIES_PER_PROGRAM)
        session.infer(PROGRAM_A)
        assert session.cache_size == ENTRIES_PER_PROGRAM
        session.infer(PROGRAM_B)
        assert session.cache_size == ENTRIES_PER_PROGRAM
        assert session.stats.eviction_count() == ENTRIES_PER_PROGRAM
        # the evicted program misses again; the resident one stays hot
        session.infer(PROGRAM_A)
        assert session.stats.miss_count("infer") == 3

    def test_hits_refresh_recency(self):
        session = Session(max_cache_entries=2 * ENTRIES_PER_PROGRAM)
        session.infer(PROGRAM_A)
        session.infer(PROGRAM_B)
        session.infer(PROGRAM_A)  # refresh A: B is now least-recently-used
        session.infer(PROGRAM_C)  # evicts B's entries, not A's
        before = session.stats.miss_count()
        session.infer(PROGRAM_A)
        assert session.stats.miss_count() == before  # A fully cached
        session.infer(PROGRAM_B)
        assert session.stats.miss_count() > before  # B was evicted

    def test_eviction_counters_are_per_stage(self):
        session = Session(max_cache_entries=ENTRIES_PER_PROGRAM)
        session.infer(PROGRAM_A)
        session.infer(PROGRAM_B)
        stats = session.stats
        assert stats.eviction_count("parse") == 1
        assert stats.eviction_count("infer") == 1
        assert stats.as_dict()["evictions"]["parse"] == 1
        assert "eviction(s)" in str(stats)

    def test_rejects_non_positive_bound(self):
        with pytest.raises(ValueError):
            Session(max_cache_entries=0)
        with pytest.raises(ValueError):
            Session(max_cache_entries=-3)

    def test_clear_cache_still_works(self):
        session = Session(max_cache_entries=ENTRIES_PER_PROGRAM)
        session.infer(PROGRAM_A)
        session.clear_cache()
        assert session.cache_size == 0
        session.infer(PROGRAM_A)
        assert session.stats.miss_count("infer") == 2
