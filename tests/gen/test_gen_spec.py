"""GenSpec contract tests: validation, serialisation, header round-trip."""

import dataclasses

import pytest

from repro.gen import GenSpec, SPEC_HEADER_PREFIX, generate_source, spec_of_source


def test_defaults_are_valid():
    spec = GenSpec()
    assert spec.seed == 0 and spec.classes >= 1


@pytest.mark.parametrize(
    "kwargs",
    [
        {"classes": 0},
        {"hierarchy_depth": 0},
        {"methods_per_class": -1},
        {"fields_per_class": -1},
        {"statics": -1},
    ],
)
def test_invalid_knobs_rejected(kwargs):
    with pytest.raises(ValueError):
        GenSpec(**kwargs)


def test_dict_round_trip():
    spec = GenSpec(seed=9, classes=7, loops=False)
    assert GenSpec.from_dict(spec.to_dict()) == spec


def test_json_round_trip_is_canonical():
    spec = GenSpec(seed=9, classes=7, downcasts=False)
    assert GenSpec.from_json(spec.to_json()) == spec
    # canonical form: sorted keys, no whitespace
    assert spec.to_json() == spec.to_json()
    assert " " not in spec.to_json()


def test_unknown_fields_rejected():
    with pytest.raises(ValueError, match="unknown GenSpec fields"):
        GenSpec.from_dict({"classes": 3, "wibble": 1})


def test_with_seed_changes_only_seed():
    spec = GenSpec(classes=5, letreg=False)
    reseeded = spec.with_seed(42)
    assert reseeded.seed == 42
    assert dataclasses.replace(reseeded, seed=spec.seed) == spec


def test_header_embeds_and_recovers_spec():
    spec = GenSpec(seed=5, classes=3)
    assert spec.header().startswith(SPEC_HEADER_PREFIX)
    source = generate_source(spec)
    assert spec_of_source(source) == spec


def test_spec_of_source_none_for_hand_written():
    assert spec_of_source("class A extends Object { }\n") is None
    assert spec_of_source("") is None


def test_spec_of_source_raises_on_corrupt_header():
    with pytest.raises(ValueError):
        spec_of_source(SPEC_HEADER_PREFIX + "{not json\n")


def test_sized_presets_scale():
    small = generate_source(GenSpec.sized(4))
    large = generate_source(GenSpec.sized(100))
    assert len(small.splitlines()) < len(large.splitlines())
    assert GenSpec.sized(100).classes == 100
