"""Generator invariants, property-tested across random specs.

The three headline properties from the issue:

* determinism -- the same :class:`GenSpec` yields the byte-identical
  source on every call;
* well-typedness -- every generated program parses and typechecks, for
  any knob/toggle combination;
* monotone sizing -- growing a size knob never shrinks the class or
  method counts (the rng streams are independent per concern, so one
  knob cannot reshuffle another's draws).
"""

from hypothesis import given, settings, strategies as st

from repro.frontend import parse_program
from repro.gen import GenSpec, generate_program, generate_source
from repro.typing import check_program

specs = st.builds(
    GenSpec,
    seed=st.integers(0, 10_000),
    classes=st.integers(1, 10),
    methods_per_class=st.integers(0, 4),
    fields_per_class=st.integers(0, 4),
    statics=st.integers(0, 5),
    hierarchy_depth=st.integers(1, 5),
    recursion=st.booleans(),
    loops=st.booleans(),
    downcasts=st.booleans(),
    overrides=st.booleans(),
    letreg=st.booleans(),
)


def _counts(spec):
    program = generate_program(spec)
    methods = sum(len(c.methods) for c in program.classes) + len(program.statics)
    return len(program.classes), methods


@settings(max_examples=40, deadline=None)
@given(specs)
def test_generation_is_deterministic(spec):
    assert generate_source(spec) == generate_source(spec)


@settings(max_examples=40, deadline=None)
@given(specs)
def test_generated_programs_parse_and_typecheck(spec):
    program = parse_program(generate_source(spec))
    assert len(program.classes) >= spec.classes
    check_program(program)


@settings(max_examples=25, deadline=None)
@given(specs, st.integers(1, 4))
def test_growing_classes_is_monotone(spec, extra):
    classes, methods = _counts(spec)
    grown_classes, grown_methods = _counts(
        GenSpec.from_dict({**spec.to_dict(), "classes": spec.classes + extra})
    )
    assert grown_classes > classes
    assert grown_methods >= methods


@settings(max_examples=25, deadline=None)
@given(specs, st.integers(1, 4))
def test_growing_methods_per_class_is_monotone(spec, extra):
    _, methods = _counts(spec)
    _, grown = _counts(
        GenSpec.from_dict(
            {**spec.to_dict(), "methods_per_class": spec.methods_per_class + extra}
        )
    )
    assert grown > methods


@settings(max_examples=25, deadline=None)
@given(specs, st.integers(1, 4))
def test_growing_statics_is_monotone(spec, extra):
    _, methods = _counts(spec)
    _, grown = _counts(
        GenSpec.from_dict({**spec.to_dict(), "statics": spec.statics + extra})
    )
    assert grown > methods


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 1000))
def test_different_seeds_differ(seed):
    # not a hard guarantee for *every* pair, but distinct adjacent seeds
    # of the default mix should essentially never collide
    assert generate_source(GenSpec(seed=seed)) != generate_source(
        GenSpec(seed=seed + 1)
    )
