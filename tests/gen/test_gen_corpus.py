"""Corpus, feature-matrix and edit-script behaviour."""

import json

import pytest

from repro.frontend import parse_program
from repro.gen import (
    GenSpec,
    corpus_seeds,
    edit_script,
    feature_matrix,
    generate_corpus,
    generate_source,
    write_corpus,
)
from repro.gen.corpus import MANIFEST_NAME
from repro.typing import check_program


def test_corpus_seeds_are_prefix_stable():
    assert corpus_seeds(7, 3) == corpus_seeds(7, 5)[:3]
    assert len(set(corpus_seeds(7, 50))) == 50


def test_generate_corpus_members_use_derived_seeds():
    base = GenSpec(seed=7, classes=3)
    corpus = generate_corpus(base, 4)
    assert [m.seed for m, _ in corpus] == corpus_seeds(7, 4)
    for member, source in corpus:
        assert member.to_dict() == {**base.to_dict(), "seed": member.seed}
        assert generate_source(member) == source


def test_feature_matrix_covers_all_toggle_combinations():
    matrix = feature_matrix(GenSpec(seed=3, classes=4))
    assert len(matrix) == 32
    combos = {
        (s.recursion, s.loops, s.downcasts, s.overrides, s.letreg) for s in matrix
    }
    assert len(combos) == 32
    assert all(s.seed == 3 and s.classes == 4 for s in matrix)


def test_edit_script_versions_parse_and_typecheck():
    versions = edit_script(GenSpec(seed=9, classes=5), 5)
    assert len(versions) == 6
    assert versions[0] != versions[1]
    for version in versions:
        check_program(parse_program(version))


def test_edit_script_is_deterministic():
    spec = GenSpec(seed=9, classes=5)
    assert edit_script(spec, 3) == edit_script(spec, 3)


def test_edit_script_rejects_uneditable_program():
    # a program with no method bodies has no editable literal lines
    spec = GenSpec(
        seed=1,
        classes=1,
        methods_per_class=0,
        fields_per_class=0,
        statics=0,
        hierarchy_depth=1,
        recursion=False,
        loops=False,
        downcasts=False,
        overrides=False,
        letreg=False,
    )
    with pytest.raises(ValueError, match="no editable body lines"):
        edit_script(spec, 1)


def test_write_corpus_manifest_round_trips(tmp_path):
    corpus = generate_corpus(GenSpec(seed=11, classes=3), 3)
    paths = write_corpus(tmp_path, corpus)
    assert [p.name for p in paths] == ["gen_000.cj", "gen_001.cj", "gen_002.cj"]
    manifest = json.loads((tmp_path / MANIFEST_NAME).read_text())
    assert manifest["schema"] == "repro-gen-corpus/1"
    assert manifest["count"] == 3
    for entry, (member, source) in zip(manifest["programs"], corpus):
        spec = GenSpec.from_dict(entry["spec"])
        assert spec == member
        assert (tmp_path / entry["file"]).read_text() == source
        assert generate_source(spec) == source
