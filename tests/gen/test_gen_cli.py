"""Tests for the ``repro gen`` subcommand and the loadgen corpus-dir wiring."""

import json

import pytest

from repro.__main__ import main
from repro.frontend import parse_program
from repro.gen import GenSpec, generate_source, spec_of_source
from repro.serve import LoadgenConfig
from repro.typing import check_program


class TestGenSingle(object):
    def test_prints_program_to_stdout(self, capsys):
        assert main(["gen", "--seed", "5", "--classes", "3"]) == 0
        out = capsys.readouterr().out
        spec = spec_of_source(out)
        assert spec == GenSpec(seed=5, classes=3)
        check_program(parse_program(out))

    def test_writes_program_to_file(self, tmp_path, capsys):
        path = tmp_path / "prog.cj"
        assert main(["gen", "--seed", "1", "-o", str(path)]) == 0
        assert spec_of_source(path.read_text()) == GenSpec(seed=1)
        assert str(path) in capsys.readouterr().out

    def test_output_is_deterministic(self, capsys):
        assert main(["gen", "--seed", "9"]) == 0
        first = capsys.readouterr().out
        assert main(["gen", "--seed", "9"]) == 0
        assert capsys.readouterr().out == first

    def test_knob_and_toggle_flags(self, capsys):
        assert (
            main(
                [
                    "gen",
                    "--classes",
                    "3",
                    "--methods-per-class",
                    "1",
                    "--no-recursion",
                    "--no-loops",
                ]
            )
            == 0
        )
        spec = spec_of_source(capsys.readouterr().out)
        assert spec.methods_per_class == 1
        assert not spec.recursion and not spec.loops
        assert spec.downcasts  # untouched toggles stay on

    def test_sized_preset(self, capsys):
        assert main(["gen", "--sized", "--classes", "12", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert spec_of_source(out) == GenSpec.sized(12, seed=2)

    def test_json_format_carries_spec_and_source(self, capsys):
        assert main(["gen", "--seed", "3", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] and payload["command"] == "gen"
        assert GenSpec.from_dict(payload["spec"]) == GenSpec(seed=3)
        assert payload["lines"] == len(payload["source"].splitlines())


class TestGenSpecFlags(object):
    def test_spec_only_prints_canonical_json(self, capsys):
        assert main(["gen", "--spec-only", "--classes", "7"]) == 0
        line = capsys.readouterr().out.strip()
        assert GenSpec.from_json(line) == GenSpec(classes=7)
        assert line == GenSpec(classes=7).to_json()

    def test_spec_json_round_trips_through_cli(self, capsys):
        spec = GenSpec(seed=4, classes=3, loops=False)
        assert main(["gen", "--spec", spec.to_json()]) == 0
        assert spec_of_source(capsys.readouterr().out) == spec

    def test_seed_overrides_spec(self, capsys):
        spec = GenSpec(seed=4, classes=3)
        assert main(["gen", "--spec", spec.to_json(), "--seed", "8"]) == 0
        assert spec_of_source(capsys.readouterr().out) == spec.with_seed(8)

    def test_bad_spec_is_an_error(self, capsys):
        assert main(["gen", "--spec", '{"wibble": 1}']) == 2
        assert "bad spec" in capsys.readouterr().err

    def test_invalid_knob_is_an_error(self, capsys):
        assert main(["gen", "--classes", "0"]) == 2


class TestGenCorpus(object):
    def test_writes_corpus_with_manifest(self, tmp_path, capsys):
        out_dir = tmp_path / "corpus"
        assert (
            main(["gen", "--count", "3", "--out-dir", str(out_dir)]) == 0
        )
        files = sorted(p.name for p in out_dir.glob("*.cj"))
        assert files == ["gen_000.cj", "gen_001.cj", "gen_002.cj"]
        manifest = json.loads((out_dir / "corpus.json").read_text())
        assert manifest["count"] == 3
        for entry in manifest["programs"]:
            spec = GenSpec.from_dict(entry["spec"])
            assert (out_dir / entry["file"]).read_text() == generate_source(spec)

    def test_writes_edit_script_versions(self, tmp_path):
        out_dir = tmp_path / "edits"
        assert (
            main(
                ["gen", "--edits", "2", "--out-dir", str(out_dir), "--classes", "5"]
            )
            == 0
        )
        files = sorted(out_dir.glob("*.cj"))
        assert [p.name for p in files] == [
            "edit_000.cj",
            "edit_001.cj",
            "edit_002.cj",
        ]
        versions = [p.read_text() for p in files]
        assert len(set(versions)) == 3
        for version in versions:
            check_program(parse_program(version))

    def test_count_and_edits_conflict(self, capsys):
        assert main(["gen", "--count", "2", "--edits", "2", "--out-dir", "x"]) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_count_requires_out_dir(self, capsys):
        assert main(["gen", "--count", "2"]) == 2
        assert "--out-dir" in capsys.readouterr().err

    def test_json_error_payload(self, capsys):
        assert main(["gen", "--count", "2", "--format", "json"]) == 2
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["diagnostics"]


class TestLoadgenCorpusDir(object):
    def test_corpus_from_directory(self, tmp_path):
        out_dir = tmp_path / "corpus"
        assert main(["gen", "--count", "2", "--out-dir", str(out_dir)]) == 0
        config = LoadgenConfig(corpus_dir=str(out_dir))
        corpus = config.corpus()
        assert [name for name, _ in corpus] == ["gen_000", "gen_001"]
        assert all(spec_of_source(src) is not None for _, src in corpus)
        assert config.corpus_label() == "generated"

    def test_programs_filter_by_stem(self, tmp_path):
        out_dir = tmp_path / "corpus"
        assert main(["gen", "--count", "2", "--out-dir", str(out_dir)]) == 0
        config = LoadgenConfig(corpus_dir=str(out_dir), programs=("gen_001",))
        assert [name for name, _ in config.corpus()] == ["gen_001"]
        with pytest.raises(ValueError, match="unknown corpus program"):
            LoadgenConfig(corpus_dir=str(out_dir), programs=("nope",)).corpus()

    def test_empty_directory_is_an_error(self, tmp_path):
        with pytest.raises(ValueError, match="no \\*\\.cj programs"):
            LoadgenConfig(corpus_dir=str(tmp_path)).corpus()

    def test_default_corpus_still_olden(self):
        config = LoadgenConfig()
        assert config.corpus_label() == "olden"
        assert config.corpus()
