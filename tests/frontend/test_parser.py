"""Unit tests for the Core-Java parser."""

import pytest

from repro.frontend import ParseError, parse_expr, parse_program
from repro.lang import ast as S


class TestExpressions:
    def test_literals(self):
        assert isinstance(parse_expr("42"), S.IntLit)
        assert isinstance(parse_expr("true"), S.BoolLit)
        assert isinstance(parse_expr("null"), S.Null)

    def test_this(self):
        e = parse_expr("this")
        assert isinstance(e, S.Var) and e.name == "this"

    def test_precedence_arith(self):
        e = parse_expr("1 + 2 * 3")
        assert isinstance(e, S.Binop) and e.op == "+"
        assert isinstance(e.right, S.Binop) and e.right.op == "*"

    def test_precedence_compare_binds_looser(self):
        e = parse_expr("a + b < c")
        assert e.op == "<"

    def test_precedence_logic(self):
        e = parse_expr("a && b || c")
        assert e.op == "||"
        assert e.left.op == "&&"

    def test_left_associativity(self):
        e = parse_expr("a - b - c")
        assert e.op == "-"
        assert isinstance(e.left, S.Binop) and e.left.op == "-"

    def test_unary(self):
        e = parse_expr("!a")
        assert isinstance(e, S.Unop) and e.op == "!"
        e = parse_expr("-x")
        assert isinstance(e, S.Unop) and e.op == "-"

    def test_field_chain(self):
        e = parse_expr("a.b.c")
        assert isinstance(e, S.FieldRead) and e.field_name == "c"
        assert isinstance(e.receiver, S.FieldRead) and e.receiver.field_name == "b"

    def test_method_call(self):
        e = parse_expr("a.m(1, 2)")
        assert isinstance(e, S.Call) and not e.is_static
        assert len(e.args) == 2

    def test_static_call(self):
        e = parse_expr("m(x)")
        assert isinstance(e, S.Call) and e.is_static

    def test_new(self):
        e = parse_expr("new Pair(null, null)")
        assert isinstance(e, S.New) and e.class_name == "Pair"
        assert len(e.args) == 2
        assert e.label  # unique allocation-site label

    def test_new_labels_unique(self):
        a = parse_expr("new A()")
        b = parse_expr("new A()")
        assert a.label != b.label

    def test_cast(self):
        e = parse_expr("(B) a")
        assert isinstance(e, S.Cast) and e.class_name == "B"

    def test_cast_null_becomes_typed_null(self):
        e = parse_expr("(List) null")
        assert isinstance(e, S.Null) and e.class_name == "List"

    def test_parenthesised_expr_not_cast(self):
        e = parse_expr("(a)")
        assert isinstance(e, S.Var)

    def test_cast_of_call(self):
        e = parse_expr("(B) f(x)")
        assert isinstance(e, S.Cast)
        assert isinstance(e.expr, S.Call)

    def test_assignment_right_associative(self):
        e = parse_expr("a = b = c")
        assert isinstance(e, S.Assign)
        assert isinstance(e.rhs, S.Assign)

    def test_assignment_target_validation(self):
        with pytest.raises(ParseError):
            parse_expr("1 = 2")

    def test_if_expression(self):
        e = parse_expr("if (c) { 1 } else { 2 }")
        assert isinstance(e, S.If)

    def test_equality_chain(self):
        e = parse_expr("a == null")
        assert e.op == "=="


class TestBlocks:
    def test_block_result(self):
        e = parse_expr("{ int x = 1; x }")
        assert isinstance(e, S.Block)
        assert isinstance(e.result, S.Var)

    def test_block_no_result(self):
        e = parse_expr("{ x = 1; }")
        assert isinstance(e, S.Block)
        assert e.result is None

    def test_local_decl_without_init(self):
        e = parse_expr("{ List x; x }")
        decl = e.stmts[0]
        assert isinstance(decl, S.LocalDecl)
        assert decl.init is None

    def test_result_must_be_last(self):
        with pytest.raises(ParseError):
            parse_expr("{ f() g() }")


class TestPrograms:
    def test_class_with_fields_and_methods(self):
        p = parse_program(
            """
            class Pair extends Object {
              Object fst;
              Object snd;
              Object getFst() { fst }
            }
            """
        )
        assert len(p.classes) == 1
        cls = p.classes[0]
        assert [f.name for f in cls.fields] == ["fst", "snd"]
        assert cls.methods[0].owner == "Pair"

    def test_default_superclass_is_object(self):
        p = parse_program("class A { }")
        assert p.classes[0].super_name == "Object"

    def test_top_level_statics(self):
        p = parse_program("int f(int x) { x } static int g() { 1 }")
        assert [m.name for m in p.statics] == ["f", "g"]
        assert all(m.is_static for m in p.statics)

    def test_while_statement(self):
        p = parse_program(
            """
            int f(int n) {
              int i = 0;
              while (i < n) { i = i + 1; }
              i
            }
            """
        )
        stmts = p.statics[0].body.stmts
        assert any(
            isinstance(s, S.ExprStmt) and isinstance(s.expr, S.While) for s in stmts
        )

    def test_return_sugar(self):
        p = parse_program("int f() { return 42; }")
        assert isinstance(p.statics[0].body.result, S.IntLit)

    def test_statement_if_without_else(self):
        p = parse_program(
            """
            int f(int n) {
              int x = 0;
              if (n > 0) { x = 1; }
              x
            }
            """
        )
        assert p.statics[0].body.result is not None

    def test_parse_error_position(self):
        with pytest.raises(ParseError) as exc:
            parse_program("class { }")
        assert exc.value.pos.line == 1

    def test_trailing_garbage_rejected_in_expr(self):
        with pytest.raises(ParseError):
            parse_expr("1 + 2 extra")

    def test_method_param_list(self):
        p = parse_program("int f(int a, bool b, List c) { a }")
        params = p.statics[0].params
        assert [p_.name for p_ in params] == ["a", "b", "c"]
        assert params[1].param_type == S.BOOL
        assert params[2].param_type == S.ClassType("List")


class TestRoundTrip:
    def test_pretty_then_reparse(self):
        from repro.lang.pretty import pretty_program

        src = """
        class A extends Object {
          int x;
          A id(A other) { other }
        }
        int f(int n) { if (n > 0) { f(n - 1) } else { 0 } }
        """
        p1 = parse_program(src)
        text = pretty_program(p1)
        p2 = parse_program(text)
        assert [c.name for c in p2.classes] == ["A"]
        assert [m.name for m in p2.statics] == ["f"]
