"""Unit tests for the Core-Java lexer."""

import pytest

from repro.frontend.lexer import LexError, Token, tokenize


def kinds(src):
    return [(t.kind, t.text) for t in tokenize(src) if t.kind != "eof"]


class TestBasics:
    def test_empty(self):
        toks = tokenize("")
        assert len(toks) == 1
        assert toks[0].kind == "eof"

    def test_identifiers_and_keywords(self):
        assert kinds("class Foo extends Bar") == [
            ("kw", "class"),
            ("id", "Foo"),
            ("kw", "extends"),
            ("id", "Bar"),
        ]

    def test_integers(self):
        assert kinds("42 0 123456") == [("int", "42"), ("int", "0"), ("int", "123456")]

    def test_underscore_identifiers(self):
        assert kinds("_x a_b") == [("id", "_x"), ("id", "a_b")]

    def test_positions(self):
        toks = tokenize("a\n  b")
        assert toks[0].pos.line == 1 and toks[0].pos.col == 1
        assert toks[1].pos.line == 2 and toks[1].pos.col == 3


class TestOperators:
    def test_multi_char_operators_maximal_munch(self):
        assert kinds("a<=b") == [("id", "a"), ("op", "<="), ("id", "b")]
        assert kinds("a==b") == [("id", "a"), ("op", "=="), ("id", "b")]
        assert kinds("a = =b") == [
            ("id", "a"),
            ("op", "="),
            ("op", "="),
            ("id", "b"),
        ]

    def test_logical_operators(self):
        assert kinds("a&&b||c") == [
            ("id", "a"),
            ("op", "&&"),
            ("id", "b"),
            ("op", "||"),
            ("id", "c"),
        ]

    def test_punctuation(self):
        assert [k for k, _ in kinds("(){};,.")] == ["op"] * 7


class TestComments:
    def test_line_comment(self):
        assert kinds("a // comment\nb") == [("id", "a"), ("id", "b")]

    def test_block_comment(self):
        assert kinds("a /* x\ny */ b") == [("id", "a"), ("id", "b")]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("/* never closed")


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(LexError) as exc:
            tokenize("a @ b")
        assert "@" in str(exc.value)

    def test_error_carries_position(self):
        with pytest.raises(LexError) as exc:
            tokenize("ab\n  #")
        assert exc.value.pos.line == 2


class TestTokenHelpers:
    def test_is_kw(self):
        t = tokenize("class")[0]
        assert t.is_kw("class")
        assert not t.is_kw("extends")

    def test_is_op(self):
        t = tokenize("<=")[0]
        assert t.is_op("<=")
        assert not t.is_op("<")
