"""Unit tests for the while -> tail-recursive-method conversion (Sec 2)."""

import pytest

from repro.frontend import convert_loops, parse_program
from repro.frontend.loops import free_vars
from repro.lang import ast as S
from repro.lang.ast import walk
from repro.runtime import SourceInterpreter
from repro.typing import check_program

SUM = """
int sumTo(int n) {
  int acc = 0;
  int i = 0;
  while (i < n) {
    acc = acc + i;
    i = i + 1;
  }
  acc
}
"""


def _no_whiles(program):
    return all(
        not isinstance(node, S.While)
        for m in program.all_methods()
        for node in walk(m.body)
    )


class TestFreeVars:
    def test_simple(self):
        p = parse_program(SUM)
        body = p.statics[0].body
        assert set(free_vars(body, set())) >= {"n"}

    def test_block_locals_are_bound(self):
        p = parse_program("int f() { int x = 1; x }")
        assert free_vars(p.statics[0].body, set()) == []


class TestConversion:
    def test_removes_all_whiles(self):
        p = convert_loops(parse_program(SUM))
        assert _no_whiles(p)

    def test_generated_method_is_by_ref(self):
        p = convert_loops(parse_program(SUM))
        loops = [m for m in p.statics if m.by_ref]
        assert len(loops) == 1
        assert loops[0].name.startswith("loop$")

    def test_loop_method_params_are_free_vars(self):
        p = convert_loops(parse_program(SUM))
        loop = next(m for m in p.statics if m.by_ref)
        names = {param.name for param in loop.params}
        assert {"i", "n", "acc"} <= names

    def test_converted_program_typechecks(self):
        p = convert_loops(parse_program(SUM))
        check_program(p)

    def test_nested_loops(self):
        src = """
        int f(int n) {
          int total = 0;
          int i = 0;
          while (i < n) {
            int j = 0;
            while (j < n) { total = total + 1; j = j + 1; }
            i = i + 1;
          }
          total
        }
        """
        p = convert_loops(parse_program(src))
        assert _no_whiles(p)
        assert sum(1 for m in p.statics if m.by_ref) == 2
        check_program(p)

    def test_loop_in_instance_method_renames_this(self):
        src = """
        class Counter extends Object {
          int count;
          void bump(int n) {
            int i = 0;
            while (i < n) { count = count + 1; i = i + 1; }
          }
        }
        """
        original = parse_program(src)
        check_program(original)  # elaborates bare `count` into `this.count`
        p = convert_loops(original)
        assert _no_whiles(p)
        loop = next(m for m in p.statics if m.by_ref)
        # `this` is passed as an ordinary renamed parameter
        assert any(param.name == "self$" for param in loop.params)
        check_program(p)

    def test_original_program_unchanged(self):
        p1 = parse_program(SUM)
        convert_loops(p1)
        assert any(
            isinstance(node, S.While)
            for m in p1.all_methods()
            for node in walk(m.body)
        )


class TestSemanticEquivalence:
    """The converted program computes the same results.

    Note: the converted form is for *inference* purposes; by-reference
    semantics matter only for region equating.  For loops whose mutated
    state feeds the result through returned values (like an accumulator
    read *after* the loop), by-value execution of the converted program
    would diverge -- so equivalence is checked on loops whose effects flow
    through the heap.
    """

    def test_heap_effect_loop(self):
        src = """
        class Box extends Object { int v; }
        int f(int n) {
          Box acc = new Box(0);
          int i = 0;
          while (i < n) {
            acc.v = acc.v + i;
            i = i + 1;
          }
          acc.v
        }
        """
        # Direct execution of the original
        p1 = parse_program(src)
        check_program(p1)
        direct = SourceInterpreter(p1).run_static("f", [10])
        assert direct.value == 45
