"""Harness integration with the session-owned worker pool.

Pins the backend-default unification (``fig8_rows`` used
``getattr(session, "backend", None)`` while ``fig9_rows`` read
``session.backend`` directly — both now normalise the session first and
read the same attribute) and that one session really shares one pool
across fig8 *and* fig9.
"""

from repro.api import Session
from repro.bench import fig8_rows, fig9_rows


class TestSessionBackendDefault(object):
    def test_fig8_honours_the_session_default_backend(self):
        with Session(backend="process") as session:
            rows = fig8_rows(
                names=["sieve"], quick=True, session=session, max_workers=2
            )
            assert len(rows) == 1
            # the batch really went through the session's pool
            assert session.stats.event_count("pool.spawns") == 1

    def test_fig9_honours_the_session_default_backend(self):
        with Session(backend="process") as session:
            rows = fig9_rows(
                names=["bisort", "treeadd"], session=session, max_workers=2
            )
            assert len(rows) == 2
            assert session.stats.event_count("pool.spawns") == 1

    def test_explicit_backend_still_overrides(self):
        with Session(backend="process") as session:
            fig9_rows(
                names=["treeadd"],
                session=session,
                backend="thread",
                max_workers=2,
            )
            assert session.stats.event_count("pool.spawns") == 0

    def test_session_less_callers_agree_on_the_default(self):
        # neither builder needs a session; both fall back to a fresh
        # session's default (thread) the same way
        eight = fig8_rows(names=["sieve"], quick=True)
        nine = fig9_rows(names=["treeadd"])
        assert len(eight) == 1 and len(nine) == 1


class TestOnePoolAcrossTables(object):
    def test_fig8_then_fig9_reuse_one_pool(self):
        with Session(backend="process") as session:
            fig8_rows(
                names=["sieve"], quick=True, session=session, max_workers=2
            )
            fig9_rows(
                names=["bisort", "treeadd"], session=session, max_workers=2
            )
            assert session.stats.event_count("pool.spawns") == 1
            assert session.stats.event_count("pool.resizes") == 0
