"""Unit tests for the staged sample-publishing subsystem (repro.bench.pkb).

Everything here runs on toy specs and synthetic reports — no real
benchmark family executes — so the suite pins the subsystem's contracts
(sample round-trips, stage ordering, teardown guarantees, host-aware
compare tolerance) in milliseconds.
"""

import json

import pytest

from repro.bench import pkb
from repro.bench.pkb import (
    BenchmarkError,
    BenchmarkSpec,
    Comparison,
    MetricRule,
    Runner,
    Sample,
    Threshold,
    compare,
    format_comparison,
    host_metadata,
    interleaved_best,
    load_report,
    next_bench_path,
    publish,
    sample,
)

# --------------------------------------------------------------- samples


class TestSample:
    def test_round_trips_through_json(self):
        s = sample("latency", 12.3456789, "ms", {"b": 2, "a": "x"})
        payload = json.loads(json.dumps(s.to_dict()))
        assert Sample.from_dict(payload) == s

    def test_metadata_order_is_canonical(self):
        a = sample("m", 1.0, "ms", {"x": 1, "y": 2})
        b = Sample.from_dict(
            {"metric": "m", "value": 1.0, "unit": "ms",
             "timestamp": a.timestamp, "metadata": {"y": 2, "x": 1}}
        )
        assert a.metadata == b.metadata

    def test_stamped_at_creation(self):
        first = sample("m", 1, "ms")
        second = sample("m", 2, "ms")
        assert first.timestamp <= second.timestamp

    def test_value_coerced_and_rounded(self):
        assert sample("m", "3.14159265358979", "ms").value == 3.141593

    def test_meta_returns_plain_dict(self):
        assert sample("m", 1, "ms", {"k": "v"}).meta() == {"k": "v"}


def test_host_metadata_shape():
    host = host_metadata()
    assert host["cpu_count"] >= 1
    assert host["affinity"] >= 1
    assert isinstance(host["python"], str)
    assert isinstance(host["platform"], str)


def test_interleaved_best_returns_both_sides():
    base_s, cand_s = interleaved_best(lambda: None, lambda: None, rounds=2)
    assert base_s >= 0 and cand_s >= 0


# ------------------------------------------------------------ thresholds


class TestThreshold:
    def test_floor_violation(self):
        t = Threshold("speedup", floor=5.0)
        bad = [sample("speedup", 3.0, "x"), sample("other", 0.1, "x")]
        violations = t.violations(bad)
        assert len(violations) == 1
        assert "below floor" in violations[0]
        assert t.violations([sample("speedup", 5.0, "x")]) == []

    def test_ceiling_violation(self):
        t = Threshold("requests_failed", ceiling=0.0)
        assert t.violations([sample("requests_failed", 2, "count")])
        assert t.violations([sample("requests_failed", 0, "count")]) == []

    def test_min_cores_gate(self):
        t = Threshold("speedup", floor=1.5, min_cores=4)
        assert not t.applicable(cores=1)
        assert t.applicable(cores=4)

    def test_spec_skips_inapplicable_thresholds(self):
        spec = BenchmarkSpec(
            name="toy",
            description="",
            run=lambda ctx: [],
            thresholds=(Threshold("speedup", floor=100.0, min_cores=64),),
        )
        samples = [sample("speedup", 1.0, "x")]
        assert spec.check_thresholds(samples, cores=2) == []
        assert spec.check_thresholds(samples, cores=64)

    def test_spec_threshold_lookup(self):
        spec = BenchmarkSpec(
            name="toy",
            description="",
            run=lambda ctx: [],
            thresholds=(Threshold("speedup", floor=5.0),),
        )
        assert spec.threshold("speedup").floor == 5.0
        with pytest.raises(KeyError):
            spec.threshold("nonexistent")


def test_rule_for_prefers_spec_rules_then_unit_defaults():
    spec = BenchmarkSpec(
        name="toy",
        description="",
        run=lambda ctx: [],
        rules={"special": MetricRule(direction="higher", tolerance=0.1)},
    )
    assert spec.rule_for("special", "ms").direction == "higher"
    assert spec.rule_for("wall", "ms").direction == "lower"
    assert spec.rule_for("ratio_metric", "x").portable
    assert spec.rule_for("mystery", "furlongs").direction == "info"


def test_warn_tolerance_defaults_to_half():
    assert MetricRule(tolerance=0.5).warn_at == 0.25
    assert MetricRule(tolerance=0.5, warn_tolerance=0.1).warn_at == 0.1


# ---------------------------------------------------------------- runner


def _toy_spec(log, **overrides):
    """A four-stage spec that records the order its stages ran in."""

    def mk(name):
        def stage(ctx):
            log.append(name)
            if name == "run":
                ctx.state["ran"] = True
                return [sample("metric", 1.0, "ms", {"case": "toy"})]
        return stage

    fields = dict(
        name="toy",
        description="toy family",
        provision=mk("provision"),
        prepare=mk("prepare"),
        run=mk("run"),
        teardown=mk("teardown"),
        key_fields=("case",),
    )
    fields.update(overrides)
    return BenchmarkSpec(**fields)


class TestRunner:
    def test_stage_ordering(self):
        log = []
        run = Runner().run(_toy_spec(log))
        assert log == ["provision", "prepare", "run", "teardown"]
        assert [st.stage for st in run.stages] == log
        assert all(st.ok for st in run.stages)
        assert [s.metric for s in run.samples] == ["metric"]
        assert run.elapsed >= 0 and not run.smoke

    def test_smoke_flag_reaches_context(self):
        seen = {}

        def run_stage(ctx):
            seen["smoke"] = ctx.smoke
            return []

        run = Runner().run(
            _toy_spec([], run=run_stage), smoke=True
        )
        assert seen["smoke"] and run.smoke

    def test_optional_stages_are_skipped(self):
        spec = BenchmarkSpec(
            name="minimal", description="", run=lambda ctx: []
        )
        run = Runner().run(spec)
        assert [st.stage for st in run.stages] == ["run"]

    def test_run_failure_still_tears_down(self):
        log = []

        def boom(ctx):
            log.append("run")
            raise ValueError("kaput")

        with pytest.raises(BenchmarkError) as excinfo:
            Runner().run(_toy_spec(log, run=boom))
        assert log == ["provision", "prepare", "run", "teardown"]
        assert excinfo.value.stage == "run"
        assert isinstance(excinfo.value.cause, ValueError)

    def test_teardown_failure_does_not_mask_run_failure(self):
        def boom_run(ctx):
            raise ValueError("the real problem")

        def boom_teardown(ctx):
            raise RuntimeError("secondary")

        with pytest.raises(BenchmarkError) as excinfo:
            Runner().run(
                _toy_spec([], run=boom_run, teardown=boom_teardown)
            )
        assert excinfo.value.stage == "run"

    def test_teardown_failure_alone_raises(self):
        def boom_teardown(ctx):
            raise RuntimeError("leak")

        with pytest.raises(BenchmarkError) as excinfo:
            Runner().run(_toy_spec([], teardown=boom_teardown))
        assert excinfo.value.stage == "teardown"

    def test_provision_failure_skips_teardown(self):
        log = []

        def boom(ctx):
            raise OSError("no port")

        with pytest.raises(BenchmarkError) as excinfo:
            Runner().run(_toy_spec(log, provision=boom))
        assert excinfo.value.stage == "provision"
        assert log == []  # neither prepare, run nor teardown ran

    def test_violations_property(self):
        spec = _toy_spec([], thresholds=(Threshold("metric", floor=2.0),))
        run = Runner().run(spec)
        assert len(run.violations) == 1


# --------------------------------------------------------------- publish


def test_next_bench_path(tmp_path):
    assert next_bench_path(str(tmp_path)).name == "BENCH_1.json"
    (tmp_path / "BENCH_3.json").write_text("{}")
    (tmp_path / "BENCH_10.json").write_text("{}")
    (tmp_path / "BENCH_smoke.json").write_text("{}")  # non-numeric: ignored
    assert next_bench_path(str(tmp_path)).name == "BENCH_11.json"


def test_publish_load_round_trip(tmp_path):
    run = Runner().run(_toy_spec([]), smoke=True)
    out = tmp_path / "BENCH_1.json"
    report = publish([run], str(out), smoke=True)
    assert report["schema_version"] == pkb.SCHEMA_VERSION
    assert report["smoke"] is True
    assert report["families"]["toy"]["samples"] == 1
    assert "provision" in report["families"]["toy"]["stages"]

    loaded = load_report(str(out))
    assert loaded == json.loads(out.read_text())
    entry = loaded["samples"][0]
    assert entry["family"] == "toy"
    assert Sample.from_dict(entry) == run.samples[0]


def test_load_report_normalises_legacy_files(tmp_path):
    legacy = tmp_path / "BENCH_6.json"
    legacy.write_text(json.dumps({
        "benchmark": "serve_loadgen",
        "samples": [
            {"metric": "throughput", "value": 9.0, "unit": "requests/s",
             "timestamp": 1.0, "metadata": {"concurrency": 2}},
        ],
    }))
    loaded = load_report(str(legacy))
    assert loaded["schema_version"] == 0
    assert loaded["host"] == {}
    assert loaded["samples"][0]["family"] == "serve_loadgen"


def test_load_report_backfills_standalone_single_family(tmp_path):
    standalone = tmp_path / "report.json"
    standalone.write_text(json.dumps({
        "schema_version": 1,
        "benchmark": "incremental_reinfer",
        "host": host_metadata(),
        "samples": [
            {"metric": "speedup", "value": 8.0, "unit": "x",
             "timestamp": 1.0, "metadata": {}},
        ],
    }))
    loaded = load_report(str(standalone))
    assert loaded["samples"][0]["family"] == "incremental_reinfer"


# --------------------------------------------------------------- compare

HOST_A = {"cpu_count": 8, "affinity": 8, "python": "3.11.7",
          "platform": "Linux-test"}
HOST_B = {"cpu_count": 2, "affinity": 2, "python": "3.12.1",
          "platform": "Linux-other"}

#: key_fields exclude "workers" so host-varying facts don't break matching
TOY_SPECS = {
    "toy": BenchmarkSpec(
        name="toy",
        description="",
        run=lambda ctx: [],
        key_fields=("case",),
        rules={"gated_count": MetricRule(
            direction="lower", tolerance=0.0, warn_tolerance=0.0,
            portable=True,
        )},
    ),
}


def _entry(metric, value, unit, metadata=None, family="toy"):
    return {"family": family, "metric": metric, "value": value, "unit": unit,
            "timestamp": 1.0, "metadata": metadata or {"case": "a"}}


def _write_report(path, entries, host=HOST_A):
    path.write_text(json.dumps({
        "schema_version": 1, "suite": "repro-bench", "host": host,
        "smoke": False, "samples": entries, "families": {},
    }))
    return str(path)


def _compare(tmp_path, old, new, old_host=HOST_A, new_host=HOST_A):
    base = _write_report(tmp_path / "base.json", old, host=old_host)
    cand = _write_report(tmp_path / "cand.json", new, host=new_host)
    return compare(base, cand, specs=TOY_SPECS)


class TestCompare:
    def test_identical_reports_pass(self, tmp_path):
        entries = [_entry("wall", 100.0, "ms")]
        comparison = _compare(tmp_path, entries, entries)
        assert comparison.ok and comparison.same_host
        assert [d.outcome for d in comparison.diffs] == ["pass"]

    def test_sub_noise_floor_change_passes(self, tmp_path):
        # 90% worse but only 0.9 ms absolute: below the 1 ms noise
        # floor, relative tolerance must not flag scheduler jitter
        comparison = _compare(
            tmp_path, [_entry("wall", 1.0, "ms")],
            [_entry("wall", 1.9, "ms")],
        )
        assert [d.outcome for d in comparison.diffs] == ["pass"]
        assert "noise floor" in comparison.diffs[0].note

    def test_small_worsening_within_warn_band_passes(self, tmp_path):
        comparison = _compare(
            tmp_path, [_entry("wall", 100.0, "ms")],
            [_entry("wall", 110.0, "ms")],
        )
        assert [d.outcome for d in comparison.diffs] == ["pass"]

    def test_worsening_in_warn_band_warns(self, tmp_path):
        # 40% worse: beyond warn_at (25%) but inside tolerance (50%)
        comparison = _compare(
            tmp_path, [_entry("wall", 100.0, "ms")],
            [_entry("wall", 140.0, "ms")],
        )
        assert [d.outcome for d in comparison.diffs] == ["warn"]
        assert comparison.ok  # warns never fail the gate

    def test_two_x_slower_regresses_same_host(self, tmp_path):
        comparison = _compare(
            tmp_path, [_entry("wall", 100.0, "ms")],
            [_entry("wall", 200.0, "ms")],
        )
        assert [d.outcome for d in comparison.diffs] == ["regress"]
        assert not comparison.ok
        assert format_comparison(comparison).endswith("REGRESSION")

    def test_absolute_metric_downgrades_cross_host(self, tmp_path):
        comparison = _compare(
            tmp_path, [_entry("wall", 100.0, "ms")],
            [_entry("wall", 200.0, "ms")], new_host=HOST_B,
        )
        assert not comparison.same_host
        assert [d.outcome for d in comparison.diffs] == ["warn"]
        assert "not machine-portable" in comparison.diffs[0].note

    def test_portable_metric_gates_cross_host(self, tmp_path):
        # "x" unit is portable: a halved speedup regresses across hosts
        comparison = _compare(
            tmp_path, [_entry("speedup", 8.0, "x")],
            [_entry("speedup", 2.0, "x")], new_host=HOST_B,
        )
        assert [d.outcome for d in comparison.diffs] == ["regress"]

    def test_improvement_reported(self, tmp_path):
        comparison = _compare(
            tmp_path, [_entry("wall", 100.0, "ms")],
            [_entry("wall", 50.0, "ms")],
        )
        assert [d.outcome for d in comparison.diffs] == ["improved"]
        assert comparison.diffs[0].change == -0.5

    def test_missing_and_new_metrics(self, tmp_path):
        comparison = _compare(
            tmp_path,
            [_entry("wall", 100.0, "ms"), _entry("gone", 1.0, "ms")],
            [_entry("wall", 100.0, "ms"), _entry("fresh", 1.0, "ms")],
        )
        outcomes = {d.metric: d.outcome for d in comparison.diffs}
        assert outcomes == {"wall": "pass", "gone": "missing",
                            "fresh": "new"}
        assert comparison.ok  # renames warn, only regressions fail

    def test_info_units_never_gate(self, tmp_path):
        comparison = _compare(
            tmp_path, [_entry("sccs", 35, "count")],
            [_entry("sccs", 70, "count")],
        )
        assert [d.outcome for d in comparison.diffs] == ["pass"]
        assert comparison.diffs[0].note == "informational"

    def test_spec_rule_overrides_unit_default(self, tmp_path):
        # gated_count declares zero tolerance, so "count" gates here
        comparison = _compare(
            tmp_path, [_entry("gated_count", 0.0, "count")],
            [_entry("gated_count", 1.0, "count")], new_host=HOST_B,
        )
        assert [d.outcome for d in comparison.diffs] == ["regress"]

    def test_key_fields_separate_sizes(self, tmp_path):
        old = [_entry("wall", 10.0, "ms", {"case": "small", "workers": 8}),
               _entry("wall", 100.0, "ms", {"case": "big", "workers": 8})]
        new = [_entry("wall", 10.0, "ms", {"case": "small", "workers": 2}),
               _entry("wall", 300.0, "ms", {"case": "big", "workers": 2})]
        comparison = _compare(tmp_path, old, new)
        outcomes = {dict(d.key)["case"]: d.outcome for d in comparison.diffs}
        # "workers" is not a key field, so entries match despite differing
        assert outcomes == {"small": "pass", "big": "regress"}

    def test_duplicate_samples_keep_the_best(self, tmp_path):
        old = [_entry("wall", 100.0, "ms"), _entry("wall", 80.0, "ms")]
        new = [_entry("wall", 90.0, "ms"), _entry("wall", 85.0, "ms")]
        comparison = _compare(tmp_path, old, new)
        (diff,) = comparison.diffs
        assert (diff.baseline, diff.candidate) == (80.0, 85.0)

    def test_to_dict_and_counts(self, tmp_path):
        comparison = _compare(
            tmp_path, [_entry("wall", 100.0, "ms")],
            [_entry("wall", 200.0, "ms")],
        )
        payload = comparison.to_dict()
        assert payload["ok"] is False
        assert payload["counts"]["regress"] == 1
        assert payload["diffs"][0]["key"] == {"case": "a"}

    def test_format_passes_end_with_pass(self, tmp_path):
        entries = [_entry("wall", 100.0, "ms")]
        comparison = _compare(tmp_path, entries, entries)
        text = format_comparison(comparison, verbose=True)
        assert text.endswith("PASS")
        assert "toy.wall" in text  # verbose shows passing metrics too

    def test_compare_reaches_legacy_baseline(self, tmp_path):
        legacy = tmp_path / "BENCH_old.json"
        legacy.write_text(json.dumps({
            "benchmark": "toy",
            "samples": [_entry("speedup", 8.0, "x")],
        }))
        cand = _write_report(
            tmp_path / "cand.json", [_entry("speedup", 7.5, "x")]
        )
        comparison = compare(str(legacy), cand, specs=TOY_SPECS)
        # legacy files carry no host, so only portable metrics gate —
        # and the speedup held, so the pair passes
        assert not comparison.same_host
        assert comparison.ok


def test_compare_default_specs_are_the_registered_families(tmp_path):
    reg = _write_report(
        tmp_path / "a.json",
        [_entry("speedup", 8.0, "x", {"corpus": "c", "edit": "e"},
                family="incremental_reinfer")],
    )
    comparison = compare(reg, reg)  # specs=None -> repro.bench.families
    assert comparison.ok
