"""The gen_scaling benchmark family: registration and a PKB smoke run."""

from repro.bench import families as bench_families
from repro.bench.families import (
    GEN_REINFER_CLASSES,
    GEN_SCALING_SMOKE,
    measure_gen_pipeline,
    measure_reinfer,
)
from repro.bench.pkb import Runner
from repro.gen import GenSpec, edit_script


def test_family_registered_with_expected_contract():
    spec = bench_families.get_spec("gen_scaling")
    assert spec.key_fields == ("corpus", "classes", "seed")
    names = [t.metric for t in spec.thresholds]
    assert "gen_reinfer_speedup" in names
    assert "gen_reinfer_speedup" in spec.rules


def test_smoke_run_emits_curve_and_reinfer_samples():
    run = Runner().run(bench_families.get_spec("gen_scaling"), smoke=True)
    assert not run.violations, run.violations
    by_metric = {}
    for s in run.samples:
        by_metric.setdefault(s.metric, []).append(s)
    for stage in ("generate", "parse", "infer", "verify"):
        curve = by_metric[stage]
        assert [s.meta()["classes"] for s in curve] == list(GEN_SCALING_SMOKE)
        assert all(s.meta()["corpus"] == "generated" for s in curve)
        assert all(s.unit == "ms" and s.value >= 0 for s in curve)
    (speedup,) = by_metric["gen_reinfer_speedup"]
    assert speedup.meta()["classes"] == GEN_REINFER_CLASSES["smoke"]
    assert speedup.meta()["sccs_reused"] >= 1
    assert speedup.value > 0


def test_measure_gen_pipeline_reports_program_shape():
    measured = measure_gen_pipeline(4, rounds=1)
    assert measured["classes"] == 4
    assert measured["lines"] >= 50
    assert measured["methods"] > 4
    for stage in ("generate_s", "parse_s", "infer_s", "verify_s"):
        assert measured[stage] >= 0


def test_measure_reinfer_accepts_generated_version_pair():
    versions = edit_script(GenSpec.sized(12, seed=0), 1)
    measured = measure_reinfer(1, source=versions[0], edited=versions[1])
    result = measured["result"]
    # a one-literal edit must splice nearly every SCC from the prior run
    assert result.reused_sccs >= len(result.scc_keys) - 2
    assert measured["speedup"] > 0


def test_measure_reinfer_rejects_half_a_version_pair():
    import pytest

    with pytest.raises(ValueError, match="both of source/edited"):
        measure_reinfer(1, source="class A extends Object { }")
