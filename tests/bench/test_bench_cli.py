"""Tests for the ``repro bench`` subcommands.

Most tests swap the family registry for toy specs so the CLI paths run
in milliseconds; one smoke test exercises a real (cheap) family
end-to-end to keep the registry wiring honest.
"""

import json

import pytest

from repro.__main__ import main
from repro.bench import families as bench_families
from repro.bench.pkb import (
    BenchmarkSpec,
    MetricRule,
    Threshold,
    sample,
)


def _toy_registry(value=1.0):
    def run(ctx):
        return [
            sample("wall", value, "ms", {"case": "a"}),
            sample("speedup", 8.0, "x", {"case": "a"}),
        ]

    return {
        "toy": BenchmarkSpec(
            name="toy",
            description="a toy family for CLI tests",
            run=run,
            key_fields=("case",),
            thresholds=(Threshold("speedup", floor=5.0),),
            rules={"speedup": MetricRule(
                direction="higher", tolerance=0.5, portable=True
            )},
        ),
    }


@pytest.fixture()
def toy_registry(monkeypatch):
    monkeypatch.setattr(bench_families, "_REGISTRY", _toy_registry())


class TestBenchList:
    def test_lists_registered_families(self, capsys):
        assert main(["bench", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("solver_scaling", "incremental_reinfer",
                     "serve_loadgen", "fig8", "fig9"):
            assert name in out
        assert "threshold" in out

    def test_json_carries_thresholds(self, capsys):
        assert main(["bench", "list", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        families = {f["name"]: f for f in payload["families"]}
        assert len(families) >= 8
        reinfer = families["incremental_reinfer"]
        assert {"metric": "speedup", "floor": 3.0, "ceiling": None,
                "min_cores": 1} in reinfer["thresholds"]
        assert reinfer["key_fields"] == ["corpus", "edit"]


class TestBenchRun:
    def test_prints_samples(self, toy_registry, capsys):
        assert main(["bench", "run", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "toy" in out and "wall" in out and "case=a" in out

    def test_families_filter_rejects_unknown(self, toy_registry, capsys):
        assert main(["bench", "run", "--families", "nonexistent"]) == 2
        assert "unknown benchmark family" in capsys.readouterr().err

    def test_threshold_violation_exits_nonzero(self, monkeypatch, capsys):
        registry = _toy_registry()
        failing = BenchmarkSpec(
            name="toy",
            description="",
            run=lambda ctx: [sample("speedup", 1.0, "x", {"case": "a"})],
            thresholds=(Threshold("speedup", floor=5.0),),
        )
        registry["toy"] = failing
        monkeypatch.setattr(bench_families, "_REGISTRY", registry)
        assert main(["bench", "run"]) == 1
        assert "THRESHOLD" in capsys.readouterr().out

    def test_real_family_smoke(self, capsys):
        """One genuine (cheap) family through the real registry.

        fig9 declares no thresholds, so this can't flake on a loaded
        machine the way a speedup floor (e.g. session_reuse's) can;
        the threshold-violation exit path is covered by the toy
        registry above.
        """
        assert main(["bench", "run", "--smoke", "--families", "fig9"]) == 0
        out = capsys.readouterr().out
        assert "fig9" in out and "inference" in out


class TestBenchPublish:
    def test_writes_schema_versioned_report(
        self, toy_registry, tmp_path, capsys
    ):
        out_path = tmp_path / "BENCH_1.json"
        assert main(
            ["bench", "publish", "--smoke", "--output", str(out_path)]
        ) == 0
        report = json.loads(out_path.read_text())
        assert report["schema_version"] == 1
        assert report["smoke"] is True
        assert report["host"]["cpu_count"] >= 1
        assert {s["family"] for s in report["samples"]} == {"toy"}
        assert report["families"]["toy"]["samples"] == 2
        assert "wrote" in capsys.readouterr().out

    def test_default_output_is_next_bench_file(
        self, toy_registry, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "BENCH_41.json").write_text("{}")
        assert main(["bench", "publish", "--smoke"]) == 0
        assert (tmp_path / "BENCH_42.json").exists()

    def test_violation_still_writes_file(self, monkeypatch, tmp_path):
        registry = {
            "toy": BenchmarkSpec(
                name="toy",
                description="",
                run=lambda ctx: [sample("speedup", 1.0, "x", {"case": "a"})],
                thresholds=(Threshold("speedup", floor=5.0),),
            ),
        }
        monkeypatch.setattr(bench_families, "_REGISTRY", registry)
        out_path = tmp_path / "BENCH_1.json"
        assert main(
            ["bench", "publish", "--smoke", "--output", str(out_path)]
        ) == 1
        assert json.loads(out_path.read_text())["samples"]


class TestBenchCompare:
    def _publish(self, tmp_path, name, value=1.0, monkeypatch=None):
        monkeypatch.setattr(
            bench_families, "_REGISTRY", _toy_registry(value)
        )
        path = tmp_path / name
        assert main(
            ["bench", "publish", "--smoke", "--output", str(path)]
        ) == 0
        return str(path)

    def test_identical_pair_passes(self, tmp_path, monkeypatch, capsys):
        base = self._publish(tmp_path, "a.json", 1.0, monkeypatch)
        cand = self._publish(tmp_path, "b.json", 1.0, monkeypatch)
        assert main(["bench", "compare", base, cand]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_two_x_slower_fails(self, tmp_path, monkeypatch, capsys):
        base = self._publish(tmp_path, "a.json", 1.0, monkeypatch)
        cand = self._publish(tmp_path, "b.json", 2.0, monkeypatch)
        assert main(["bench", "compare", base, cand]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out and "toy.wall" in out

    def test_json_payload(self, tmp_path, monkeypatch, capsys):
        base = self._publish(tmp_path, "a.json", 1.0, monkeypatch)
        cand = self._publish(tmp_path, "b.json", 2.0, monkeypatch)
        capsys.readouterr()  # drain the publish output
        assert main(
            ["bench", "compare", base, cand, "--format", "json"]
        ) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["same_host"] is True
        assert payload["counts"]["regress"] == 1

    def test_verbose_shows_passing_metrics(
        self, tmp_path, monkeypatch, capsys
    ):
        base = self._publish(tmp_path, "a.json", 1.0, monkeypatch)
        assert main(["bench", "compare", base, base, "--verbose"]) == 0
        assert "toy.speedup" in capsys.readouterr().out
