"""Regression tests for the evaluation harness.

Covers the three harness bugfixes:

* ``measure_program`` reports the engine's own elapsed time regardless of
  whether the inference result came from the session cache (Fig 8 rows
  must not depend on cache state);
* ``fig8_table`` / ``fig9_table`` render ``-`` columns for rows without
  paper baselines (user-registered programs) instead of raising;
* ``count_annotation_lines`` matches real region syntax, not the bare
  substring ``<r``.
"""

from repro.api import Session
from repro.bench.harness import (
    Fig8Row,
    Fig9Row,
    count_annotation_lines,
    fig8_table,
    fig9_table,
    measure_program,
)
from repro.bench.regjava import REGJAVA_PROGRAMS
from repro.core import SubtypingMode


class TestMeasureProgramTiming:
    def test_inference_time_is_cache_state_independent(self):
        """The same row value must come back on a cache hit and a miss."""
        session = Session()
        program = REGJAVA_PROGRAMS["ackermann"]
        t_miss, *_ = measure_program(
            program, SubtypingMode.FIELD, run=False, session=session
        )
        assert session.stats.miss_count("infer") == 1
        t_hit, *_ = measure_program(
            program, SubtypingMode.FIELD, run=False, session=session
        )
        assert session.stats.hit_count("infer") == 1
        assert t_hit == t_miss
        assert t_miss > 0


class TestTablesWithoutPaperBaselines:
    def _fig8_row(self, paper=None):
        return Fig8Row(
            name="user-program",
            source_lines=42,
            annotation_lines=7,
            inference_seconds=0.123,
            checking_seconds=0.045,
            input_label="16",
            ratios={"none": 1.0, "object": 0.5},
            localized={"none": 1},
            paper=paper,
        )

    def test_fig8_table_renders_dash_columns(self):
        table = fig8_table(rows=[self._fig8_row()])
        line = table.splitlines()[-1]
        assert "user-program" in line
        assert "-" in line.split("|")[-1]

    def test_fig8_table_mixes_paper_and_custom_rows(self):
        paper = REGJAVA_PROGRAMS["sieve"].paper
        with_paper = self._fig8_row(paper=paper)
        with_paper.name = "sieve"
        table = fig8_table(rows=[with_paper, self._fig8_row()])
        sieve_line, custom_line = table.splitlines()[-2:]
        assert f"{paper.ratio_no_sub:5.3f}" in sieve_line
        assert "-" in custom_line.split("|")[-1]

    def test_fig9_table_renders_dash_columns(self):
        row = Fig9Row(
            name="user-program",
            source_lines=42,
            annotation_lines=7,
            inference_seconds=0.123,
            paper=None,
        )
        table = fig9_table(rows=[row])
        line = table.splitlines()[-1]
        assert "user-program" in line
        assert line.split("|")[-1].split() == ["-", "-", "-"]


class TestCountAnnotationLines:
    def test_counts_region_instantiations(self):
        text = "\n".join(
            [
                "List<r1, r2> cell = new List<r1, r2>(x);",
                "Tree<heap> t = build<heap>(n);",
                "Null<rnull> z;",
            ]
        )
        assert count_annotation_lines(text) == 3

    def test_counts_letreg_and_where(self):
        text = "letreg r9 in {\n  f(x);\n}\nint m<r1>(List<r1> xs) where r1 >= r2 {"
        assert count_annotation_lines(text) == 2

    def test_ignores_comparisons_and_plain_code(self):
        text = "\n".join(
            [
                "if (a < r) { b } else { c };",  # comparison, not a region
                "while (i < r2) { i = i + 1 };",  # comparison against var r2
                "int result;",
                "m<>();",  # region-monomorphic call: no annotation
            ]
        )
        assert count_annotation_lines(text) == 0

    def test_single_region_and_trailing_comma_forms(self):
        assert count_annotation_lines("Pair<r3>") == 1
        assert count_annotation_lines("Pair<r3, heap>") == 1
