"""Tests over the benchmark corpus itself: every program parses, types,
runs correctly, and the harness produces well-formed tables."""

import pytest

from repro.bench import (
    OLDEN_PROGRAMS,
    REGJAVA_PROGRAMS,
    count_annotation_lines,
    fig8_rows,
    fig8_table,
    fig9_rows,
    fig9_table,
    olden_program,
    regjava_program,
)
from repro.frontend import parse_program
from repro.runtime import SourceInterpreter
from repro.typing import check_program


class TestCorpusWellFormed(object):
    @pytest.mark.parametrize("name", sorted(REGJAVA_PROGRAMS))
    def test_regjava_types(self, name):
        check_program(parse_program(REGJAVA_PROGRAMS[name].source))

    @pytest.mark.parametrize("name", sorted(OLDEN_PROGRAMS))
    def test_olden_types(self, name):
        check_program(parse_program(OLDEN_PROGRAMS[name].source))

    def test_ten_programs_each(self):
        assert len(REGJAVA_PROGRAMS) == 10
        assert len(OLDEN_PROGRAMS) == 10

    def test_lookup_helpers(self):
        assert regjava_program("sieve").entry == "sieve"
        assert olden_program("treeadd").entry == "treeadd"
        with pytest.raises(KeyError):
            regjava_program("nope")
        with pytest.raises(KeyError):
            olden_program("nope")

    def test_paper_rows_complete(self):
        for p in REGJAVA_PROGRAMS.values():
            assert p.paper.source_lines > 0
            assert p.paper.inference_seconds > 0
        for p in OLDEN_PROGRAMS.values():
            assert p.paper.source_lines > 0


class TestExpectedResults(object):
    @pytest.mark.parametrize(
        "name",
        [n for n, p in REGJAVA_PROGRAMS.items() if p.expected_test_result is not None],
    )
    def test_known_outputs(self, name):
        program = REGJAVA_PROGRAMS[name]
        value = SourceInterpreter(parse_program(program.source)).run_static(
            program.entry, list(program.test_args)
        )
        assert value.value == program.expected_test_result

    def test_sieve_counts_primes(self):
        program = REGJAVA_PROGRAMS["sieve"]
        value = SourceInterpreter(parse_program(program.source)).run_static(
            "sieve", [100]
        )
        assert value.value == 25  # primes below 100

    def test_mergesort_sorts(self):
        src = REGJAVA_PROGRAMS["mergesort"].source + """
        bool sorted(IntList xs) {
          if (xs == null) { true }
          else {
            if (xs.next == null) { true }
            else { xs.value <= xs.next.value && sorted(xs.next) }
          }
        }
        bool check(int n) { sorted(msort(randomList(n, 42))) }
        """
        value = SourceInterpreter(parse_program(src)).run_static("check", [60])
        assert value.value is True

    def test_treeadd_sums_tree(self):
        program = OLDEN_PROGRAMS["treeadd"]
        value = SourceInterpreter(parse_program(program.source)).run_static(
            "treeadd", [3]
        )
        # perfect tree of depth 3 with labels 1..7 in heap order
        assert value.value == sum(range(1, 8))


class TestHarness(object):
    def test_fig8_rows_quick(self):
        rows = fig8_rows(quick=True, names=["ackermann", "foo-sum"])
        assert len(rows) == 2
        for row in rows:
            assert set(row.ratios) == {"none", "object", "field"}
            assert row.inference_seconds > 0
            assert row.annotation_lines > 0

    def test_fig8_table_renders(self):
        rows = fig8_rows(quick=True, names=["ackermann"])
        text = fig8_table(rows)
        assert "ackermann" in text
        assert "paper" in text

    def test_fig9_rows(self):
        rows = fig9_rows(names=["treeadd", "bisort"])
        assert len(rows) == 2
        assert all(r.inference_seconds < 2.0 for r in rows)

    def test_fig9_table_renders(self):
        rows = fig9_rows(names=["treeadd"])
        text = fig9_table(rows)
        assert "treeadd" in text

    def test_annotation_line_counter(self):
        assert count_annotation_lines("letreg r in x") == 1
        assert count_annotation_lines("int f() where r2 >= r1") == 1
        assert count_annotation_lines("Pair<r1, r2> p;") == 1
        assert count_annotation_lines("int x = 1;") == 0
