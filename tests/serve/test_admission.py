"""The admission gate: run now, wait briefly, or refuse fast."""

import threading
import time

import pytest

from repro.serve.admission import (
    AdmissionController,
    AdmissionRejected,
    AdmissionTimeout,
)


class TestTriage(object):
    def test_slots_admit_without_waiting(self):
        gate = AdmissionController(2, 0)
        gate.acquire()
        gate.acquire()
        assert gate.depth == 2
        gate.release()
        gate.release()
        assert gate.depth == 0

    def test_full_line_rejects_immediately(self):
        gate = AdmissionController(1, 0)
        gate.acquire()
        started = time.monotonic()
        with pytest.raises(AdmissionRejected) as exc:
            gate.acquire(timeout=10.0)
        assert time.monotonic() - started < 1.0  # refused, not queued
        assert exc.value.retry_after >= 1
        gate.release()

    def test_waiters_get_the_slot_when_it_frees(self):
        gate = AdmissionController(1, 1)
        gate.acquire()
        got = threading.Event()

        def waiter():
            gate.acquire(timeout=10.0)
            got.set()

        t = threading.Thread(target=waiter)
        t.start()
        time.sleep(0.05)
        assert not got.is_set()
        assert gate.depth == 2  # one running, one waiting
        gate.release()
        t.join(5.0)
        assert got.is_set()
        gate.release()

    def test_deadline_in_line_raises_timeout(self):
        gate = AdmissionController(1, 1)
        gate.acquire()
        with pytest.raises(AdmissionTimeout):
            gate.acquire(timeout=0.05)
        assert gate.snapshot()["wait_timeouts"] == 1
        gate.release()

    def test_second_waiter_beyond_the_room_is_rejected(self):
        gate = AdmissionController(1, 1)
        gate.acquire()
        results = []

        def waiter():
            try:
                gate.acquire(timeout=5.0)
                results.append("admitted")
            except AdmissionRejected:
                results.append("rejected")

        t1 = threading.Thread(target=waiter)
        t1.start()
        time.sleep(0.05)  # t1 is now waiting; the room (size 1) is full
        with pytest.raises(AdmissionRejected):
            gate.acquire(timeout=5.0)
        gate.release()
        t1.join(5.0)
        assert results == ["admitted"]
        gate.release()


class TestRetryAfter(object):
    def test_scales_with_observed_latency_and_backlog(self):
        gate = AdmissionController(1, 0)
        gate.acquire()
        gate.release(latency=4.0)
        assert gate.retry_after() == 4  # empty line, one 4s slot
        gate.acquire()
        assert gate.retry_after() == 8  # one running + the newcomer

    def test_defaults_to_at_least_one_second(self):
        gate = AdmissionController(8, 0)
        assert gate.retry_after() >= 1


class TestValidation(object):
    def test_bounds_must_be_sane(self):
        with pytest.raises(ValueError):
            AdmissionController(0, 1)
        with pytest.raises(ValueError):
            AdmissionController(1, -1)

    def test_snapshot_shape(self):
        gate = AdmissionController(2, 3)
        snap = gate.snapshot()
        assert snap["max_concurrency"] == 2
        assert snap["max_pending"] == 3
        assert snap["admitted"] == snap["rejected"] == 0
