"""The load generator: percentiles, sweeps, the PKB sample contract."""

import json

import pytest

from repro.serve import LoadgenConfig, ServerConfig, run_loadgen
from repro.serve.loadgen import LevelReport, percentile

EXPECTED_METRICS = {
    "latency_p50",
    "latency_p99",
    "latency_mean",
    "throughput",
    "requests_ok",
    "requests_rejected",
    "requests_failed",
}


class TestPercentile(object):
    def test_empty_and_singleton(self):
        assert percentile([], 0.5) == 0.0
        assert percentile([7.0], 0.99) == 7.0

    def test_interpolates(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 4.0
        assert percentile(values, 0.5) == 2.5

    def test_order_independent(self):
        assert percentile([3.0, 1.0, 2.0], 0.5) == 2.0


class TestConfig(object):
    def test_corpus_defaults_to_all_olden(self):
        corpus = LoadgenConfig().corpus()
        assert len(corpus) >= 5
        assert all(src.strip() for _, src in corpus)

    def test_unknown_program_is_rejected(self):
        with pytest.raises(ValueError):
            LoadgenConfig(programs=("not-a-benchmark",)).corpus()


class TestLevelReport(object):
    def test_throughput(self):
        report = LevelReport(concurrency=2, ok=10, elapsed=2.0)
        assert report.throughput == 5.0
        assert LevelReport(concurrency=1).throughput == 0.0


class TestSweep(object):
    def test_self_hosted_sweep_produces_the_bench_artifact(self, tmp_path):
        out = tmp_path / "bench.json"
        result = run_loadgen(
            LoadgenConfig(
                levels=(1, 2),
                requests_per_level=4,
                tenants=2,
                programs=("treeadd",),
            ),
            self_host=True,
            server_config=ServerConfig(backend="thread"),
            output=str(out),
        )
        summary = result["summary"]
        assert summary["total_ok"] == 8
        assert summary["total_failed"] == 0
        assert summary["levels"] == [1, 2]
        # one full metric set per level
        by_level = {}
        for sample in result["samples"]:
            by_level.setdefault(
                sample["metadata"]["concurrency"], set()
            ).add(sample["metric"])
            assert set(sample) == {
                "metric", "value", "unit", "timestamp", "metadata",
            }
            assert sample["metadata"]["corpus"] == "olden"
            assert sample["metadata"]["tenants"] == 2
        assert by_level == {1: EXPECTED_METRICS, 2: EXPECTED_METRICS}
        # the artifact on disk is the same report
        assert json.loads(out.read_text())["summary"] == summary

    def test_report_is_schema_versioned_with_host_metadata(self):
        from repro.bench.pkb import SCHEMA_VERSION

        result = run_loadgen(
            LoadgenConfig(
                levels=(1,), requests_per_level=2, programs=("treeadd",)
            ),
            self_host=True,
            server_config=ServerConfig(backend="thread"),
        )
        assert result["schema_version"] == SCHEMA_VERSION
        assert result["host"]["cpu_count"] >= 1
        # the worker count resolves to a real number, never the old
        # string "auto" the unset cap used to publish as
        for sample in result["samples"]:
            workers = sample["metadata"]["workers"]
            assert isinstance(workers, int) and workers >= 1

    def test_each_level_is_stamped_when_it_completes(self):
        result = run_loadgen(
            LoadgenConfig(
                levels=(1, 2, 4),
                requests_per_level=3,
                programs=("treeadd",),
            ),
            self_host=True,
            server_config=ServerConfig(backend="thread"),
        )
        stamps = {}
        for sample in result["samples"]:
            level = sample["metadata"]["concurrency"]
            stamps.setdefault(level, set()).add(sample["timestamp"])
        # one shared stamp within a level, distinct stamps across levels
        assert all(len(s) == 1 for s in stamps.values())
        ordered = [next(iter(stamps[level])) for level in (1, 2, 4)]
        assert ordered[0] < ordered[1] < ordered[2]

    def test_sweep_reports_rejections_not_failures_under_overload(self):
        # a deliberately starved daemon: one slot, no waiting room — every
        # concurrent surplus request must come back 429, never an error
        result = run_loadgen(
            LoadgenConfig(
                levels=(4,), requests_per_level=8, programs=("treeadd",)
            ),
            self_host=True,
            server_config=ServerConfig(
                backend="thread", max_concurrency=1, max_pending=0
            ),
        )
        summary = result["summary"]
        assert summary["total_failed"] == 0
        assert summary["total_ok"] >= 1
        assert summary["total_ok"] + summary["total_rejected"] == 8
