"""The HTTP layer: real sockets, keep-alive, body limits, graceful drain.

Each test boots a daemon on an ephemeral port in a background thread and
talks proper HTTP/1.1 to it with ``http.client``.  One test exercises
the process backend end to end (a real worker does the inference); the
rest use the thread backend to stay fast on one core.
"""

import http.client
import json
import threading
import time

import pytest

from repro.bench.olden import OLDEN_PROGRAMS
from repro.serve import ServerConfig, make_server
from tests.conftest import PAIR_SOURCE

TREEADD = OLDEN_PROGRAMS["treeadd"]


@pytest.fixture()
def daemon():
    """A serving daemon on an ephemeral port; yields (server, connection)."""
    server = make_server(ServerConfig(backend="thread", port=0, quiet=True))
    thread = threading.Thread(
        target=server.serve_forever, kwargs={"poll_interval": 0.05}
    )
    thread.start()
    conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
    try:
        yield server, conn
    finally:
        conn.close()
        server.shutdown()
        thread.join(10.0)
        server.close()


def _post(conn, path, payload, headers=None):
    conn.request(
        "POST",
        path,
        body=json.dumps(payload),
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    response = conn.getresponse()
    return response.status, json.loads(response.read()), response


class TestRoundTrips(object):
    def test_keep_alive_serves_every_endpoint_on_one_connection(self, daemon):
        server, conn = daemon
        conn.request("GET", "/healthz")
        response = conn.getresponse()
        assert response.status == 200
        assert json.loads(response.read())["status"] == "ok"

        status, payload, _ = _post(
            conn, "/v1/infer", {"source": TREEADD.source}
        )
        assert status == 200 and payload["ok"] is True

        status, payload, _ = _post(
            conn, "/v1/check", {"source": TREEADD.source}
        )
        assert status == 200 and payload["verified"] is True

        status, payload, _ = _post(
            conn,
            "/v1/run",
            {
                "source": TREEADD.source,
                "entry": TREEADD.entry,
                "args": list(TREEADD.test_args),
            },
        )
        assert status == 200

        conn.request("GET", "/v1/stats")
        stats = json.loads(conn.getresponse().read())
        # healthz + the three engine posts (the stats call itself is
        # counted after its snapshot is taken)
        assert stats["server"]["counters"]["requests_total"] == 4
        assert stats["server"]["counters"]["status.200"] == 4

    def test_tenant_header_reaches_the_router(self, daemon):
        server, conn = daemon
        status, payload, _ = _post(
            conn,
            "/v1/infer",
            {"source": PAIR_SOURCE},
            headers={"X-Repro-Tenant": "alice"},
        )
        assert status == 200
        assert payload["tenant"] == "alice"

    def test_errors_come_back_as_json(self, daemon):
        server, conn = daemon
        status, payload, _ = _post(conn, "/v1/infer", {"source": "class X {"})
        assert status == 422
        assert payload["error"]["code"] == "program_error"

    def test_retry_after_travels_as_a_header(self):
        server = make_server(
            ServerConfig(
                backend="thread",
                port=0,
                quiet=True,
                max_concurrency=1,
                max_pending=0,
            )
        )
        thread = threading.Thread(
            target=server.serve_forever, kwargs={"poll_interval": 0.05}
        )
        thread.start()
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
        server.router.admission.acquire()  # the only slot is now busy
        try:
            status, payload, response = _post(
                conn, "/v1/infer", {"source": PAIR_SOURCE}
            )
        finally:
            server.router.admission.release()
            conn.close()
            server.shutdown()
            thread.join(10.0)
            server.close()
        assert status == 429
        assert int(response.headers["Retry-After"]) >= 1


class TestBodyLimits(object):
    def test_oversized_body_is_413_before_reading(self):
        server = make_server(
            ServerConfig(backend="thread", port=0, quiet=True, max_body_bytes=64)
        )
        thread = threading.Thread(
            target=server.serve_forever, kwargs={"poll_interval": 0.05}
        )
        thread.start()
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
        try:
            status, payload, _ = _post(
                conn, "/v1/infer", {"source": "x" * 1000}
            )
            assert status == 413
            assert payload["error"]["code"] == "payload_too_large"
        finally:
            conn.close()
            server.shutdown()
            thread.join(10.0)
            server.close()

    def test_malformed_content_length_is_400(self, daemon):
        server, conn = daemon
        conn.putrequest("POST", "/v1/infer")
        conn.putheader("Content-Length", "banana")
        conn.endheaders()
        response = conn.getresponse()
        assert response.status == 400
        response.read()


class TestDrain(object):
    def test_shutdown_waits_for_in_flight_requests(self):
        server = make_server(ServerConfig(backend="thread", port=0, quiet=True))
        thread = threading.Thread(
            target=server.serve_forever, kwargs={"poll_interval": 0.05}
        )
        thread.start()
        results = {}

        def client():
            conn = http.client.HTTPConnection(
                "127.0.0.1", server.port, timeout=30
            )
            try:
                results["status"], results["payload"], _ = _post(
                    conn, "/v1/infer", {"source": TREEADD.source}
                )
            finally:
                conn.close()

        t = threading.Thread(target=client)
        t.start()
        time.sleep(0.02)  # let the request reach the handler
        server.shutdown()  # accept loop stops; in-flight request must finish
        thread.join(10.0)
        t.join(10.0)
        server.close()
        assert results.get("status") == 200
        assert results["payload"]["ok"] is True

    def test_process_backend_round_trip_and_drain(self):
        # the full stack once: HTTP -> admission -> shared pool worker
        server = make_server(
            ServerConfig(backend="process", port=0, quiet=True, max_workers=2)
        )
        thread = threading.Thread(
            target=server.serve_forever, kwargs={"poll_interval": 0.05}
        )
        thread.start()
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=120)
        try:
            status, payload, _ = _post(
                conn, "/v1/infer", {"source": TREEADD.source}
            )
            assert status == 200 and payload["ok"] is True
            conn.request("GET", "/v1/stats")
            stats = json.loads(conn.getresponse().read())
            assert stats["pool"]["counters"].get("pool.spawns", 0) >= 1
        finally:
            conn.close()
            server.shutdown()
            thread.join(30.0)
            server.close()
        assert server.router.pool.closed
