"""The ``/v1/infer`` incremental fast path: requests naming a document."""

import json

import pytest

from repro.bench.composite import composite_source, tweak_method_body
from repro.serve.router import Router, ServerConfig


@pytest.fixture(scope="module")
def sources():
    src = composite_source()
    return src, tweak_method_body(src, "1103515245", "1103515246")


@pytest.fixture()
def router():
    with Router(ServerConfig(backend="thread", quiet=True)) as r:
        yield r


def _infer(router, payload):
    return router.handle(
        "POST", "/v1/infer", {}, json.dumps(payload).encode()
    )


class TestDocumentFastPath(object):
    def test_first_submission_runs_full(self, router, sources):
        src, _ = sources
        status, payload, _ = _infer(
            router, {"source": src, "document": "buf/main.cj"}
        )
        assert status == 200
        assert payload["cached"] is False
        assert payload["document"] == "buf/main.cj"
        assert payload["stats"]["reused_sccs"] == 0
        assert payload["stats"]["reinferred_sccs"] > 0

    def test_edited_resubmission_splices(self, router, sources):
        src, edited = sources
        _infer(router, {"source": src, "document": "buf/main.cj"})
        status, payload, _ = _infer(
            router, {"source": edited, "document": "buf/main.cj"}
        )
        assert status == 200
        assert payload["cached"] is True
        assert payload["stats"]["reused_sccs"] > 0
        assert (
            payload["stats"]["reused_sccs"]
            > payload["stats"]["reinferred_sccs"]
        )

    def test_incremental_output_matches_full(self, router, sources):
        src, edited = sources
        _infer(router, {"source": src, "document": "buf/main.cj"})
        _, incremental, _ = _infer(
            router, {"source": edited, "document": "buf/main.cj"}
        )
        _, full, _ = _infer(router, {"source": edited, "tenant": "other"})
        assert incremental["target"] == full["target"]
        assert incremental["fingerprint"] == full["fingerprint"]

    def test_documents_scoped_per_tenant(self, router, sources):
        src, _ = sources
        _infer(
            router,
            {"source": src, "document": "buf", "tenant": "alice"},
        )
        status, payload, _ = _infer(
            router, {"source": src, "document": "buf", "tenant": "bob"}
        )
        # bob's first submission of the same document name is his own
        # lineage: it cannot splice against alice's
        assert status == 200
        assert payload["stats"]["reused_sccs"] == 0

    def test_no_document_keeps_classic_response(self, router, sources):
        src, _ = sources
        status, payload, _ = _infer(router, {"source": src})
        assert status == 200
        assert "document" not in payload
        assert "reused_sccs" not in payload["stats"]

    def test_bad_document_name_is_rejected(self, router, sources):
        src, _ = sources
        for bad in ("../etc", "", "a b", "x" * 200):
            status, payload, _ = _infer(
                router, {"source": src, "document": bad}
            )
            assert status == 400
            assert payload["error"]["field"] == "document"

    def test_check_endpoint_ignores_document(self, router, sources):
        src, _ = sources
        status, payload, _ = router.handle(
            "POST",
            "/v1/check",
            {},
            json.dumps({"source": src, "document": "buf"}).encode(),
        )
        assert status == 200
        assert payload["ok"] is True
