"""Tenant isolation over one shared pool.

The satellite contract: two tenants multiplexed over a single
``WorkerPool`` get (1) disjoint artifact caches, (2) disjoint region-uid
bands, and (3) eviction isolation — filling tenant A's cache never
evicts tenant B's entries.
"""

import pytest

from repro.api import WorkerPool
from repro.regions.constraints import Region
from repro.serve.tenancy import UID_BAND_SHIFT, TenantRegistry
from tests.conftest import LIST_SOURCE, PAIR_SOURCE


def _variable_region_uids(result):
    """The uids of every variable region in a result's target program
    (``heap``/``rnull`` are process-global constants, minted by nobody)."""
    uids = set()
    for c in result.target.classes:
        uids.update(r.uid for r in c.regions if not (r.is_heap or r.is_null))
    for m in result.target.all_methods():
        uids.update(
            r.uid for r in m.region_params if not (r.is_heap or r.is_null)
        )
    return uids


@pytest.fixture()
def registry():
    pool = WorkerPool(max_workers=2)
    reg = TenantRegistry(pool)
    yield reg
    reg.close()
    pool.close()


class TestRegistry(object):
    def test_create_on_first_sight_then_stable(self, registry):
        a = registry.get_or_create("alice")
        assert registry.get_or_create("alice") is a
        assert registry.get("alice") is a
        assert registry.get("nobody") is None
        assert len(registry) == 1

    def test_sessions_share_the_one_pool(self, registry):
        a = registry.get_or_create("alice")
        b = registry.get_or_create("bob")
        assert a.session.process_pool() is b.session.process_pool()
        assert registry.pool.refs == 4  # creator + registry + two sessions

    def test_table_bound_refuses_new_tenants(self):
        pool = WorkerPool(max_workers=2)
        with TenantRegistry(pool, max_tenants=1) as reg:
            reg.get_or_create("alice")
            reg.get_or_create("alice")  # existing: fine
            with pytest.raises(ValueError):
                reg.get_or_create("bob")
        pool.close()

    def test_close_releases_every_session_ref(self):
        pool = WorkerPool(max_workers=2)
        reg = TenantRegistry(pool)
        reg.get_or_create("alice")
        reg.get_or_create("bob")
        assert pool.refs == 4
        reg.close()
        reg.close()  # idempotent
        assert pool.refs == 1
        with pytest.raises(RuntimeError):
            reg.get_or_create("carol")
        pool.close()


class TestIsolation(object):
    def test_disjoint_artifact_caches(self, registry):
        alice = registry.get_or_create("alice")
        bob = registry.get_or_create("bob")
        with alice.minting():
            alice.session.infer(PAIR_SOURCE)
        assert alice.session.cache_size > 0
        assert bob.session.cache_size == 0

    def test_disjoint_uid_bands(self, registry):
        alice = registry.get_or_create("alice")
        bob = registry.get_or_create("bob")
        assert alice.band != bob.band
        with alice.minting():
            a_result = alice.session.infer(PAIR_SOURCE)
        with bob.minting():
            b_result = bob.session.infer(PAIR_SOURCE)
        a_lo, a_hi = alice.band_range
        b_lo, b_hi = bob.band_range
        a_uids = _variable_region_uids(a_result)
        b_uids = _variable_region_uids(b_result)
        assert a_uids and b_uids
        assert all(a_lo <= uid < a_hi for uid in a_uids)
        assert all(b_lo <= uid < b_hi for uid in b_uids)
        assert not (a_uids & b_uids)

    def test_minting_resumes_and_restores(self, registry):
        alice = registry.get_or_create("alice")
        outside_before = Region.fresh("x").uid
        with alice.minting():
            first = Region.fresh("a").uid
        with alice.minting():
            second = Region.fresh("b").uid
        outside_after = Region.fresh("y").uid
        lo, hi = alice.band_range
        assert lo <= first < second < hi  # band-confined, monotonic
        assert not (lo <= outside_before < hi)
        assert not (lo <= outside_after < hi)
        assert outside_after == outside_before + 1  # outside counter untouched

    def test_eviction_isolation(self):
        # A's cache is one entry wide: inferring two programs as A evicts
        # A's own artifacts repeatedly, and must leave B's cache alone
        pool = WorkerPool(max_workers=2)
        with TenantRegistry(pool, max_cache_entries=1) as reg:
            alice = reg.get_or_create("alice")
            bob = reg.get_or_create("bob")
            with bob.minting():
                bob.session.infer(PAIR_SOURCE)
            bob_size = bob.session.cache_size
            bob_evictions = dict(bob.session.stats.evictions)
            with alice.minting():
                alice.session.infer(PAIR_SOURCE)
                alice.session.infer(LIST_SOURCE)
            assert sum(alice.session.stats.evictions.values()) > 0
            assert bob.session.cache_size == bob_size
            assert dict(bob.session.stats.evictions) == bob_evictions
        pool.close()
