"""The serve-facing CLI surface: ``batch --stats`` and ``loadgen``.

The ``serve`` subcommand itself (a blocking daemon) is covered by its
parser wiring here and end to end by the HTTP tests; running it inline
would park the test on ``serve_forever``.
"""

import json

import pytest

from repro.__main__ import build_parser, main
from tests.conftest import PAIR_SOURCE


@pytest.fixture()
def batch_files(tmp_path):
    good = tmp_path / "pair.cj"
    good.write_text(PAIR_SOURCE)
    return [str(good)]


class TestBatchStats(object):
    def test_stats_prints_session_stats_as_json(self, batch_files, capsys):
        assert main(["batch", *batch_files, "--stats"]) == 0
        out = capsys.readouterr().out
        # the JSON block is the printed SessionStats.as_dict()
        start = out.index("{")
        stats = json.loads(out[start:])
        assert set(stats) == {"hits", "misses", "evictions", "events"}
        assert stats["misses"]["infer"] == 1

    def test_stats_rides_along_in_json_format(self, batch_files, capsys):
        assert main(
            ["batch", *batch_files, "--stats", "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["stats"]["misses"]["infer"] == 1

    def test_without_the_flag_no_stats_key(self, batch_files, capsys):
        assert main(["batch", *batch_files, "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "stats" not in payload


class TestLoadgenCommand(object):
    def test_self_hosted_sweep_writes_the_artifact(self, tmp_path, capsys):
        out = tmp_path / "BENCH_6.json"
        code = main(
            [
                "loadgen",
                "--levels", "1", "2",
                "--requests", "4",
                "--tenants", "2",
                "--programs", "treeadd",
                "--backend", "thread",
                "--output", str(out),
            ]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "0 failed" in text
        report = json.loads(out.read_text())
        assert report["benchmark"] == "serve_loadgen"
        assert report["summary"]["total_failed"] == 0
        assert {s["metric"] for s in report["samples"]} >= {
            "latency_p50",
            "latency_p99",
            "throughput",
        }


class TestServeParser(object):
    def test_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.func.__name__ == "cmd_serve"
        assert args.port == 8178
        assert args.max_pending == 16
        assert args.min_workers == 0
        assert args.backend is None  # resolved to auto by cmd_serve

    def test_knobs_parse(self):
        args = build_parser().parse_args(
            [
                "serve",
                "--port", "0",
                "--backend", "process",
                "--jobs", "4",
                "--min-workers", "1",
                "--max-concurrency", "8",
                "--max-pending", "0",
                "--request-timeout", "10",
                "--idle-timeout", "2.5",
                "--quiet",
            ]
        )
        assert args.jobs == 4
        assert args.min_workers == 1
        assert args.max_concurrency == 8
        assert args.max_pending == 0
        assert args.request_timeout == 10.0
        assert args.idle_timeout == 2.5
        assert args.quiet is True
