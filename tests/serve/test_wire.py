"""The wire schema: parsing, validation, error payload shapes."""

import json

import pytest

from repro.core import DowncastStrategy, SubtypingMode
from repro.serve.wire import (
    DEFAULT_TENANT,
    MAX_SOURCE_BYTES,
    InferRequest,
    RunRequest,
    WireError,
    error_payload,
    parse_config,
    parse_json_body,
    parse_tenant,
)


def _payload(**extra):
    return {"source": "class A extends Object { }", **extra}


class TestBodyParsing(object):
    def test_round_trip(self):
        assert parse_json_body(b'{"a": 1}') == {"a": 1}

    @pytest.mark.parametrize("raw", [b"", b"not json", b"[1, 2]", b'"str"', b"\xff"])
    def test_non_object_bodies_are_rejected(self, raw):
        with pytest.raises(WireError):
            parse_json_body(raw)


class TestTenant(object):
    def test_defaults_when_absent(self):
        assert parse_tenant(None, {}) == DEFAULT_TENANT

    def test_header_wins_over_field(self):
        assert parse_tenant("alice", {"tenant": "bob"}) == "alice"

    def test_field_used_without_header(self):
        assert parse_tenant(None, {"tenant": "bob"}) == "bob"

    @pytest.mark.parametrize(
        "bad", ["", ".dot-first", "has space", "x" * 65, 42]
    )
    def test_invalid_names_are_rejected(self, bad):
        with pytest.raises(WireError) as exc:
            parse_tenant(None, {"tenant": bad})
        assert exc.value.field == "tenant"


class TestConfig(object):
    def test_empty_is_the_default_config(self):
        assert parse_config({}) == parse_config({"config": {}})

    def test_knobs_map_to_inference_config(self):
        config = parse_config(
            {
                "config": {
                    "mode": "object",
                    "downcast": "reject",
                    "minimize_pre": False,
                }
            }
        )
        assert config.mode is SubtypingMode.OBJECT
        assert config.downcast is DowncastStrategy.REJECT
        assert config.minimize_pre is False

    @pytest.mark.parametrize(
        "obj",
        [
            {"mode": "bogus"},
            {"downcast": "bogus"},
            {"localize_blocks": "yes"},
            {"unknown_knob": 1},
        ],
    )
    def test_bad_knobs_are_rejected(self, obj):
        with pytest.raises(WireError):
            parse_config({"config": obj})

    def test_non_object_config_is_rejected(self):
        with pytest.raises(WireError):
            parse_config({"config": [1]})


class TestInferRequest(object):
    def test_minimal(self):
        req = InferRequest.from_payload(
            _payload(), tenant_header=None, timeout_cap=30.0
        )
        assert req.tenant == DEFAULT_TENANT
        assert req.timeout == 30.0

    def test_timeout_clamps_to_the_server_cap(self):
        req = InferRequest.from_payload(
            _payload(timeout=9999), tenant_header=None, timeout_cap=30.0
        )
        assert req.timeout == 30.0

    @pytest.mark.parametrize("bad", [0, -1, "fast", True])
    def test_bad_timeouts_are_rejected(self, bad):
        with pytest.raises(WireError):
            InferRequest.from_payload(
                _payload(timeout=bad), tenant_header=None, timeout_cap=30.0
            )

    @pytest.mark.parametrize("source", [None, "", "   ", 42])
    def test_bad_sources_are_rejected(self, source):
        with pytest.raises(WireError) as exc:
            InferRequest.from_payload(
                {"source": source}, tenant_header=None, timeout_cap=30.0
            )
        assert exc.value.field == "source"

    def test_oversized_source_is_rejected(self):
        with pytest.raises(WireError):
            InferRequest.from_payload(
                {"source": "x" * (MAX_SOURCE_BYTES + 1)},
                tenant_header=None,
                timeout_cap=30.0,
            )


class TestRunRequest(object):
    def test_defaults(self):
        req = RunRequest.from_payload(
            _payload(), tenant_header=None, timeout_cap=30.0
        )
        assert req.entry == "main"
        assert req.args == ()
        assert req.recursion_limit is None

    def test_full(self):
        req = RunRequest.from_payload(
            _payload(entry="go", args=[1, 2], recursion_limit=1000),
            tenant_header="t1",
            timeout_cap=30.0,
        )
        assert (req.entry, req.args, req.recursion_limit) == ("go", (1, 2), 1000)
        assert req.tenant == "t1"

    @pytest.mark.parametrize(
        "extra",
        [
            {"entry": "not an identifier"},
            {"entry": 7},
            {"args": "1 2"},
            {"args": [1, "2"]},
            {"args": [True]},
            {"recursion_limit": 0},
            {"recursion_limit": True},
        ],
    )
    def test_bad_fields_are_rejected(self, extra):
        with pytest.raises(WireError):
            RunRequest.from_payload(
                _payload(**extra), tenant_header=None, timeout_cap=30.0
            )


class TestErrorPayload(object):
    def test_shape(self):
        payload = error_payload("overloaded", "busy", retry_after=3)
        assert payload == {
            "ok": False,
            "error": {"code": "overloaded", "message": "busy", "retry_after": 3},
        }

    def test_field_and_json_round_trip(self):
        payload = error_payload("bad_request", "nope", field="source")
        assert payload["error"]["field"] == "source"
        assert json.loads(json.dumps(payload)) == payload
