"""The router: endpoints, error mapping, admission wiring — no sockets."""

import json

import pytest

from repro.bench.olden import OLDEN_PROGRAMS
from repro.serve.router import Router, ServerConfig
from tests.conftest import PAIR_SOURCE

TREEADD = OLDEN_PROGRAMS["treeadd"]


@pytest.fixture()
def router():
    # thread backend: deterministic and spawn-free for endpoint tests;
    # the process path is covered by tests/api/test_pool_sharing.py and
    # the HTTP smoke in test_server_http.py
    with Router(ServerConfig(backend="thread", quiet=True)) as r:
        yield r


def _post(router, path, payload, headers=None):
    return router.handle(
        "POST", path, headers or {}, json.dumps(payload).encode()
    )


class TestReadEndpoints(object):
    def test_healthz(self, router):
        status, payload, _ = router.handle("GET", "/healthz")
        assert status == 200
        assert payload["ok"] is True
        assert payload["backend"] == "thread"

    def test_stats_shape(self, router):
        _post(router, "/v1/infer", {"source": PAIR_SOURCE, "tenant": "alice"})
        status, payload, _ = router.handle("GET", "/v1/stats")
        assert status == 200
        assert payload["server"]["counters"]["requests_total"] == 1
        assert payload["admission"]["admitted"] == 1
        assert "alice" in payload["tenants"]
        alice = payload["tenants"]["alice"]
        assert alice["requests"] == 1
        assert alice["cache_size"] > 0
        assert set(payload["pool"]) == {
            "alive", "size", "refs", "min_workers", "counters",
        }


class TestRouting(object):
    def test_unknown_path_is_404(self, router):
        status, payload, _ = router.handle("GET", "/v2/infer")
        assert status == 404
        assert payload["error"]["code"] == "not_found"

    @pytest.mark.parametrize(
        "method,path,allow",
        [
            ("POST", "/healthz", "GET"),
            ("POST", "/v1/stats", "GET"),
            ("GET", "/v1/infer", "POST"),
            ("DELETE", "/v1/run", "POST"),
        ],
    )
    def test_wrong_method_is_405_with_allow(self, router, method, path, allow):
        status, payload, headers = router.handle(method, path, {}, b"{}")
        assert status == 405
        assert headers["Allow"] == allow


class TestInfer(object):
    def test_round_trip_and_cache(self, router):
        status, payload, _ = _post(
            router, "/v1/infer", {"source": TREEADD.source}
        )
        assert status == 200
        assert payload["ok"] is True
        assert payload["cached"] is False
        assert "letreg" in payload["target"] or "<" in payload["target"]
        assert payload["stats"]["inference_seconds"] >= 0
        status, payload, _ = _post(
            router, "/v1/infer", {"source": TREEADD.source}
        )
        assert status == 200
        assert payload["cached"] is True

    def test_tenant_header_beats_field(self, router):
        _post(
            router,
            "/v1/infer",
            {"source": PAIR_SOURCE, "tenant": "field-tenant"},
            headers={"X-Repro-Tenant": "header-tenant"},
        )
        _, payload, _ = router.handle("GET", "/v1/stats")
        assert "header-tenant" in payload["tenants"]
        assert "field-tenant" not in payload["tenants"]

    def test_malformed_body_is_400(self, router):
        status, payload, _ = router.handle("POST", "/v1/infer", {}, b"nope")
        assert status == 400
        assert payload["error"]["code"] == "bad_request"

    def test_program_errors_are_422_with_diagnostics(self, router):
        status, payload, _ = _post(
            router, "/v1/infer", {"source": "class Broken {"}
        )
        assert status == 422
        assert payload["error"]["code"] == "program_error"
        assert payload["diagnostics"]
        assert payload["diagnostics"][0]["stage"] == "parse"


class TestCheckAndRun(object):
    def test_check_verifies(self, router):
        status, payload, _ = _post(
            router, "/v1/check", {"source": TREEADD.source}
        )
        assert status == 200
        assert payload["verified"] is True
        assert payload["obligations"] > 0

    def test_run_executes_the_entry(self, router):
        status, payload, _ = _post(
            router,
            "/v1/run",
            {
                "source": TREEADD.source,
                "entry": TREEADD.entry,
                "args": list(TREEADD.test_args),
            },
        )
        assert status == 200
        assert payload["entry"] == TREEADD.entry
        assert payload["stats"]["objects_allocated"] > 0

    def test_run_validates_args(self, router):
        status, payload, _ = _post(
            router, "/v1/run", {"source": TREEADD.source, "args": ["x"]}
        )
        assert status == 400
        assert payload["error"]["field"] == "args"


class TestBackpressure(object):
    def test_busy_daemon_rejects_with_retry_after(self):
        with Router(
            ServerConfig(
                backend="thread", quiet=True, max_concurrency=1, max_pending=0
            )
        ) as router:
            # occupy the only slot from outside, as an in-flight request would
            router.admission.acquire()
            try:
                status, payload, headers = _post(
                    router, "/v1/infer", {"source": PAIR_SOURCE}
                )
            finally:
                router.admission.release()
            assert status == 429
            assert payload["error"]["code"] == "overloaded"
            assert int(headers["Retry-After"]) >= 1
            assert payload["error"]["retry_after"] >= 1

    def test_queue_deadline_is_503(self):
        with Router(
            ServerConfig(
                backend="thread", quiet=True, max_concurrency=1, max_pending=4
            )
        ) as router:
            router.admission.acquire()
            try:
                status, payload, headers = _post(
                    router,
                    "/v1/infer",
                    {"source": PAIR_SOURCE, "timeout": 0.05},
                )
            finally:
                router.admission.release()
            assert status == 503
            assert payload["error"]["code"] == "queue_timeout"
            assert "Retry-After" in headers

    def test_full_tenant_table_is_429(self):
        with Router(
            ServerConfig(backend="thread", quiet=True, max_tenants=1)
        ) as router:
            assert _post(
                router, "/v1/infer", {"source": PAIR_SOURCE, "tenant": "a"}
            )[0] == 200
            status, payload, _ = _post(
                router, "/v1/infer", {"source": PAIR_SOURCE, "tenant": "b"}
            )
            assert status == 429
