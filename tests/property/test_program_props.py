"""End-to-end property tests: random well-typed programs through the full
pipeline.

A generator builds well-normal-typed Core-Java programs by construction
(classes with int/Object/self fields, methods that read fields, allocate,
call earlier methods and recurse).  The properties are the paper's headline
guarantees:

* Theorem 1: inference output always passes the independent region checker
  (all three subtyping modes);
* erasure recovers the source;
* running the annotated program never trips the dangling oracle and agrees
  with the region-free source interpreter.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.checking import check_target, erase_program
from repro.core import InferenceConfig, SubtypingMode, infer_program
from repro.frontend import parse_program
from repro.lang.pretty import pretty_program
from repro.runtime import Interpreter, SourceInterpreter
from repro.runtime.source_interp import value_snapshot
from repro.typing import check_program

_MODES = (SubtypingMode.NONE, SubtypingMode.OBJECT, SubtypingMode.FIELD)


@st.composite
def programs(draw):
    """Source text of a random well-typed Core-Java program."""
    n_classes = draw(st.integers(1, 3))
    lines = []
    class_names = []
    field_map = {}
    for ci in range(n_classes):
        name = f"C{ci}"
        # fields: an int, maybe an Object, maybe a self reference, maybe a
        # reference to an earlier class
        fields = [("int", "num")]
        if draw(st.booleans()):
            fields.append(("Object", "obj"))
        if draw(st.booleans()):
            fields.append((name, "self_ref"))
        if class_names and draw(st.booleans()):
            fields.append((draw(st.sampled_from(class_names)), "other"))
        field_map[name] = fields
        body = " ".join(f"{t} {f};" for t, f in fields)
        lines.append(f"class {name} extends Object {{ {body} }}")
        class_names.append(name)

    def null_args(cn):
        return ", ".join(
            "0" if t == "int" else "null" for t, _ in field_map[cn]
        )

    # a chain of static methods, each allowed to call earlier ones
    n_methods = draw(st.integers(1, 3))
    for mi in range(n_methods):
        cn = draw(st.sampled_from(class_names))
        use = draw(st.sampled_from(["alloc", "read", "recurse", "call"]))
        if use == "alloc":
            body = f"{cn} t = new {cn}({null_args(cn)}); t.num"
        elif use == "read":
            body = f"{cn} t = new {cn}({null_args(cn)}); t.num = n; t.num"
        elif use == "recurse":
            body = f"if (n <= 0) {{ 0 }} else {{ m{mi}(n - 1) + 1 }}"
        else:
            target = f"m{draw(st.integers(0, max(0, mi - 1)))}" if mi else None
            if target is None:
                body = "n"
            else:
                body = f"{target}(n) + 1"
        lines.append(f"int m{mi}(int n) {{ {body} }}")
    # an entry point exercising the last method
    lines.append(f"int main(int n) {{ m{n_methods - 1}(n) }}")
    return "\n".join(lines)


@given(programs())
@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_inference_output_always_checks(src):
    program = parse_program(src)
    check_program(program)
    for mode in _MODES:
        result = infer_program(
            parse_program(src), InferenceConfig(mode=mode)
        )
        report = check_target(result.target, mode=mode.value)
        assert report.ok, (src, mode, [str(i) for i in report.issues[:3]])


@given(programs())
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_erasure_recovers_source(src):
    original = parse_program(src)
    check_program(original)
    result = infer_program(original, InferenceConfig())
    erased = erase_program(result.target)
    check_program(erased)
    assert pretty_program(erased) == pretty_program(original)


@given(programs(), st.integers(0, 5))
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_run_agrees_and_never_dangles(src, n):
    result = infer_program(parse_program(src), InferenceConfig())
    target_value = Interpreter(result.target, check_dangling=True).run_static(
        "main", [n]
    )
    source_value = SourceInterpreter(parse_program(src)).run_static("main", [n])
    assert value_snapshot(target_value) == value_snapshot(source_value)
