"""Property-based round-trip tests for the frontend.

Generates random expressions / programs *as ASTs*, pretty-prints them, and
reparses: the result must be structurally identical (modulo positions and
allocation labels).  This pins the printer/parser pair far beyond the
hand-written cases.
"""

from hypothesis import given, settings, strategies as st

from repro.frontend import parse_expr, parse_program
from repro.lang import ast as S
from repro.lang.pretty import pretty_expr, pretty_program

_NAMES = ("a", "b", "c", "x", "y")
_CLASSES = ("A", "B")
_FIELDS = ("f", "g")


def exprs(depth=3):
    base = st.one_of(
        st.integers(0, 999).map(S.IntLit),
        st.booleans().map(S.BoolLit),
        st.sampled_from(_NAMES).map(S.Var),
        st.sampled_from(_CLASSES).map(lambda c: S.Null(c)),
    )
    if depth == 0:
        return base
    sub = exprs(depth - 1)
    return st.one_of(
        base,
        st.builds(S.Binop, st.sampled_from(("+", "-", "*", "<", "==")), sub, sub),
        st.builds(S.Unop, st.just("!"), st.builds(S.BoolLit, st.booleans())),
        st.builds(
            S.FieldRead, st.sampled_from(_NAMES).map(S.Var), st.sampled_from(_FIELDS)
        ),
        st.builds(
            S.Call,
            st.one_of(st.none(), st.sampled_from(_NAMES).map(S.Var)),
            st.sampled_from(("m", "n")),
            st.lists(sub, max_size=2),
        ),
        st.builds(S.New, st.sampled_from(_CLASSES), st.lists(sub, max_size=2)),
        st.builds(S.Cast, st.sampled_from(_CLASSES), st.sampled_from(_NAMES).map(S.Var)),
        st.builds(S.If, sub, sub, sub),
    )


def _shape(e):
    """Structure of an expression, ignoring positions, labels and
    singleton blocks (``{ e }`` is semantically ``e``; the printer braces
    bare if-arms)."""
    if isinstance(e, S.Block) and not e.stmts and e.result is not None:
        return _shape(e.result)
    if isinstance(e, S.Var):
        return ("var", e.name)
    if isinstance(e, S.IntLit):
        return ("int", e.value)
    if isinstance(e, S.BoolLit):
        return ("bool", e.value)
    if isinstance(e, S.Null):
        return ("null", e.class_name)
    if isinstance(e, S.FieldRead):
        return ("field", _shape(e.receiver), e.field_name)
    if isinstance(e, S.Assign):
        return ("assign", _shape(e.lhs), _shape(e.rhs))
    if isinstance(e, S.New):
        return ("new", e.class_name, tuple(_shape(a) for a in e.args))
    if isinstance(e, S.Call):
        recv = _shape(e.receiver) if e.receiver is not None else None
        return ("call", recv, e.method_name, tuple(_shape(a) for a in e.args))
    if isinstance(e, S.Cast):
        return ("cast", e.class_name, _shape(e.expr))
    if isinstance(e, S.If):
        return ("if", _shape(e.cond), _shape(e.then), _shape(e.els))
    if isinstance(e, S.While):
        return ("while", _shape(e.cond), _shape(e.body))
    if isinstance(e, S.Binop):
        return ("binop", e.op, _shape(e.left), _shape(e.right))
    if isinstance(e, S.Unop):
        return ("unop", e.op, _shape(e.operand))
    if isinstance(e, S.Block):
        items = []
        for s in e.stmts:
            if isinstance(s, S.LocalDecl):
                init = _shape(s.init) if s.init is not None else None
                items.append(("decl", str(s.decl_type), s.name, init))
            else:
                items.append(("stmt", _shape(s.expr)))
        result = _shape(e.result) if e.result is not None else None
        return ("block", tuple(items), result)
    raise TypeError(e)


@given(exprs())
@settings(max_examples=300, deadline=None)
def test_expr_roundtrip(e):
    text = pretty_expr(e)
    reparsed = parse_expr(text)
    assert _shape(reparsed) == _shape(e)


@st.composite
def small_programs(draw):
    n_fields = draw(st.integers(0, 2))
    fields = [S.FieldDecl(S.INT, f"fld{i}") for i in range(n_fields)]
    body = S.Block(stmts=[], result=draw(exprs(2)))
    method = S.MethodDecl(S.INT, "m", [S.Param(S.INT, "a")], body)
    cls = S.ClassDecl(name="A", fields=fields, methods=[])
    return S.Program(classes=[cls], statics=[method])


@given(small_programs())
@settings(max_examples=100, deadline=None)
def test_program_roundtrip(p):
    text = pretty_program(p)
    reparsed = parse_program(text)
    assert len(reparsed.classes) == len(p.classes)
    assert _shape(reparsed.statics[0].body) == _shape(p.statics[0].body)
