"""Property-based tests for the constraint solver (hypothesis).

The solver implements the entailment relation of a preorder with a top
element (heap); these properties pin down exactly that algebra.
"""

from hypothesis import given, settings, strategies as st

from repro.regions import (
    Constraint,
    HEAP,
    Outlives,
    Region,
    RegionEq,
    RegionSolver,
)

#: a small universe of regions shared by each generated constraint
N_REGIONS = 6


@st.composite
def constraints(draw, max_atoms=10):
    regions = Region.fresh_many(N_REGIONS)
    atoms = []
    for _ in range(draw(st.integers(0, max_atoms))):
        i = draw(st.integers(0, N_REGIONS - 1))
        j = draw(st.integers(0, N_REGIONS - 1))
        if draw(st.booleans()):
            atoms.append(Outlives(regions[i], regions[j]))
        else:
            atoms.append(RegionEq(regions[i], regions[j]))
    return regions, Constraint.of(*atoms)


@given(constraints())
@settings(max_examples=200, deadline=None)
def test_entailment_is_reflexive(data):
    regions, c = data
    solver = RegionSolver(c)
    for r in regions:
        assert solver.entails_outlives(r, r)


@given(constraints())
@settings(max_examples=200, deadline=None)
def test_every_given_atom_is_entailed(data):
    regions, c = data
    solver = RegionSolver(c)
    assert solver.entails(c)


@given(constraints())
@settings(max_examples=200, deadline=None)
def test_entailment_is_transitive(data):
    regions, c = data
    solver = RegionSolver(c)
    for a in regions:
        for b in regions:
            for d in regions:
                if solver.entails_outlives(a, b) and solver.entails_outlives(b, d):
                    assert solver.entails_outlives(a, d)


@given(constraints())
@settings(max_examples=200, deadline=None)
def test_mutual_outlives_is_equality(data):
    regions, c = data
    solver = RegionSolver(c)
    for a in regions:
        for b in regions:
            both = solver.entails_outlives(a, b) and solver.entails_outlives(b, a)
            assert both == solver.same_region(a, b)


@given(constraints())
@settings(max_examples=200, deadline=None)
def test_heap_is_top(data):
    regions, c = data
    solver = RegionSolver(c)
    for r in regions:
        assert solver.entails_outlives(HEAP, r)


@given(constraints())
@settings(max_examples=100, deadline=None)
def test_projection_is_sound_and_complete(data):
    """project(C, I) entails exactly C's consequences over I."""
    regions, c = data
    solver = RegionSolver(c)
    interface = regions[:3]
    projected = solver.project(interface)
    psolver = RegionSolver(projected)
    for a in interface:
        for b in interface:
            assert psolver.entails_outlives(a, b) == solver.entails_outlives(a, b)


@given(constraints())
@settings(max_examples=100, deadline=None)
def test_coalescing_substitution_preserves_entailment(data):
    regions, c = data
    solver = RegionSolver(c)
    subst = solver.coalescing_substitution()
    renamed = subst.apply_constraint(c)
    rsolver = RegionSolver(renamed)
    for a in regions:
        for b in regions:
            if solver.entails_outlives(a, b):
                assert rsolver.entails_outlives(subst.apply(a), subst.apply(b))


@given(constraints(), constraints())
@settings(max_examples=100, deadline=None)
def test_entailment_is_monotone_in_hypotheses(data1, data2):
    regions1, c1 = data1
    _, c2 = data2
    weak = RegionSolver(c1)
    # re-express c2 over c1's region universe to make strengthening real
    strong = RegionSolver(c1)
    strong.add_constraint(
        Constraint.of(
            *(
                type(a)(regions1[i % N_REGIONS], regions1[(i + 1) % N_REGIONS])
                for i, a in enumerate(c2.atoms)
                if isinstance(a, (Outlives, RegionEq))
            )
        )
    )
    for a in regions1:
        for b in regions1:
            if weak.entails_outlives(a, b):
                assert strong.entails_outlives(a, b)


@given(constraints())
@settings(max_examples=100, deadline=None)
def test_upward_closure_is_exactly_reverse_reachability(data):
    regions, c = data
    solver = RegionSolver(c)
    targets = regions[:2]
    closure = solver.upward_closure(targets)
    for r in regions:
        expected = any(solver.entails_outlives(r, t) for t in targets)
        assert (r in closure) == expected
