"""Tests for region erasure: erase(infer(P)) == P (up to elaboration)."""

import pytest

from repro.checking import erase_program
from repro.frontend import parse_program
from repro.lang.pretty import pretty_program
from repro.typing import check_program
from tests.conftest import JOIN_SOURCE, PAIR_SOURCE, infer_and_check


def _normalised(program):
    """Canonical text of an (elaborated) source program."""
    check_program(program)  # idempotent elaboration
    return pretty_program(program)


@pytest.mark.parametrize(
    "src",
    [PAIR_SOURCE, JOIN_SOURCE],
    ids=["pair", "join"],
)
def test_erasure_recovers_source(src):
    original = parse_program(src)
    check_program(original)  # elaborates implicit this / nulls in place
    result = infer_and_check(src)
    erased = erase_program(result.target)
    assert _normalised(erased) == pretty_program(original)


def test_erasure_drops_letreg():
    src = """
    class Box extends Object { int v; }
    int f() {
      Box t = new Box(1);
      t.v
    }
    """
    result = infer_and_check(src)
    erased = erase_program(result.target)
    text = pretty_program(erased)
    assert "letreg" not in text
    check_program(erased)


def test_erased_program_is_well_normal_typed():
    """The paper's Sec 4.1: |- P ~> P' implies |-N erase(P')."""
    for src in (PAIR_SOURCE, JOIN_SOURCE):
        result = infer_and_check(src)
        check_program(erase_program(result.target))


def test_erasure_preserves_labels():
    from repro.core import infer_program

    src = "class A { } A f() { new A() }"
    program = parse_program(src)
    label = program.statics[0].body.result.label
    result = infer_program(program)
    erased = erase_program(result.target)
    assert erased.statics[0].body.result.label == label
