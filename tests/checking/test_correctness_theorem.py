"""Theorem 1 (Correctness): inference always yields well-region-typed
programs.

Exercised across the entire benchmark corpus x all subtyping modes x both
downcast strategies, with the *independent* checker as oracle.
"""

import pytest

from repro.bench import OLDEN_PROGRAMS, REGJAVA_PROGRAMS
from repro.checking import check_target
from repro.core import DowncastStrategy, InferenceConfig, SubtypingMode, infer_source

_MODES = (SubtypingMode.NONE, SubtypingMode.OBJECT, SubtypingMode.FIELD)


@pytest.mark.parametrize("mode", _MODES, ids=lambda m: m.value)
@pytest.mark.parametrize("name", sorted(REGJAVA_PROGRAMS))
def test_regjava_programs_well_typed(name, mode):
    program = REGJAVA_PROGRAMS[name]
    result = infer_source(program.source, InferenceConfig(mode=mode))
    report = check_target(result.target, mode=mode.value)
    assert report.ok, [str(i) for i in report.issues[:5]]


@pytest.mark.parametrize("mode", _MODES, ids=lambda m: m.value)
@pytest.mark.parametrize("name", sorted(OLDEN_PROGRAMS))
def test_olden_programs_well_typed(name, mode):
    program = OLDEN_PROGRAMS[name]
    result = infer_source(program.source, InferenceConfig(mode=mode))
    report = check_target(result.target, mode=mode.value)
    assert report.ok, [str(i) for i in report.issues[:5]]


@pytest.mark.parametrize(
    "strategy",
    (DowncastStrategy.PADDING, DowncastStrategy.FIRST_REGION),
    ids=lambda s: s.value,
)
def test_downcast_heavy_program_well_typed(strategy):
    src = """
    class Shape extends Object { int kind; }
    class Circle extends Shape { int radius; }
    class Rect extends Shape { int w; int h; }
    class Square extends Rect { int pad; }

    int area(Shape s) {
      if (s.kind == 0) {
        Circle c = (Circle) s;
        c.radius * c.radius * 3
      } else {
        if (s.kind == 2) {
          Square q = (Square) s;
          q.w * q.w
        } else {
          Rect r = (Rect) s;
          r.w * r.h
        }
      }
    }

    int f(int which) {
      Shape s = (Shape) null;
      if (which == 0) { s = new Circle(0, 2); }
      else {
        if (which == 2) { s = new Square(2, 3, 3, 0); }
        else { s = new Rect(1, 3, 4); }
      }
      area(s)
    }
    """
    result = infer_source(src, InferenceConfig(downcast=strategy))
    report = check_target(result.target, downcast=strategy.value)
    assert report.ok, [str(i) for i in report.issues[:5]]


def test_monomorphic_ablation_still_well_typed():
    """Less precise is still sound: mono-recursion output checks too."""
    from tests.conftest import JOIN_SOURCE

    result = infer_source(
        JOIN_SOURCE,
        InferenceConfig(mode=SubtypingMode.OBJECT, polymorphic_recursion=False),
    )
    assert check_target(result.target, mode="object").ok


def test_unlocalized_ablation_still_well_typed():
    from tests.conftest import JOIN_SOURCE

    result = infer_source(JOIN_SOURCE, InferenceConfig(localize_blocks=False))
    assert check_target(result.target).ok
