"""Tests for the standalone region type checker -- including *negative*
cases: corrupted annotations must be rejected, otherwise the Theorem 1
tests would be vacuous."""

import pytest

from repro.checking import RegionTypeChecker, check_target
from repro.core import SubtypingMode
from repro.lang import target as T
from repro.regions import Constraint, ConstraintAbstraction, Region, TRUE
from tests.conftest import PAIR_SOURCE, infer_and_check

SIMPLE = """
class Box extends Object { Object item; }
Box wrap(Object x) { new Box(x) }
Object unwrap(Box b) { b.item }
int f() {
  Box b = wrap(new Object());
  unwrap(b);
  1
}
"""


class TestPositive(object):
    def test_accepts_inferred_program(self):
        result = infer_and_check(SIMPLE)  # asserts .ok internally
        assert result is not None

    def test_reports_obligations(self):
        result = infer_and_check(PAIR_SOURCE)
        report = check_target(result.target)
        assert report.ok
        assert report.obligations > 0

    def test_strict_mode_raises_on_failure(self):
        from repro.checking import RegionCheckError

        result = infer_and_check(SIMPLE)
        # corrupt: swap a method's precondition for an unsatisfiable demand
        scheme = result.schemes["wrap"]
        abstraction = result.target.q[scheme.pre]
        r_new = Region.fresh_many(2)
        # demand something about regions the caller cannot know
        from repro.regions import outlives

        params = abstraction.params
        if len(params) >= 2:
            result.target.q.define(
                ConstraintAbstraction(
                    abstraction.name,
                    params,
                    outlives(params[-1], params[0]),
                )
            )
        report = check_target(result.target)
        if not report.ok:
            with pytest.raises(RegionCheckError):
                check_target(result.target, strict=True)


class TestNegative(object):
    """Hand-corrupted programs must fail specific checks."""

    def _fresh_result(self):
        return infer_and_check(SIMPLE)

    def test_escaping_letreg_rejected(self):
        result = self._fresh_result()
        method = result.target.static_named("f")
        # wrap the body in a letreg whose region escapes via the result type
        bad = Region.fresh("bad")
        method.body = T.TLetreg(
            regions=(bad,),
            body=T.TNull(type=T.RClass("Box", (bad, bad))),
            type=T.RClass("Box", (bad, bad)),
        )
        method.ret_type = T.RClass("Box", (bad, bad))
        report = check_target(result.target)
        assert not report.ok
        assert any("escapes" in str(i) for i in report.issues)

    def test_swapped_new_regions_rejected(self):
        """Reordering a new-site's region arguments breaks either the
        invariant obligation or the initialiser flows."""
        src = """
        class Cell extends Object { Object item; }
        Cell mk(Object x, Object y) {
          Cell c = new Cell(x);
          c.item = y;
          c
        }
        """
        result = infer_and_check(src)
        method = result.target.static_named("mk")
        for node in T.twalk(method.body):
            if isinstance(node, T.TNew) and len(set(node.regions)) > 1:
                node.regions = tuple(reversed(node.regions))
        report = check_target(result.target)
        assert not report.ok

    def test_variable_annotation_mismatch_rejected(self):
        result = self._fresh_result()
        method = result.target.static_named("unwrap")
        # retype the parameter use with bogus regions
        for node in T.twalk(method.body):
            if isinstance(node, T.TVar) and node.name == "b":
                node.type = T.RClass("Box", Region.fresh_many(2))
        report = check_target(result.target)
        assert not report.ok

    def test_bad_field_flow_rejected(self):
        """Storing into a field of an unrelated region must fail."""
        result = self._fresh_result()
        method = result.target.static_named("wrap")
        for node in T.twalk(method.body):
            if isinstance(node, T.TNew):
                # claim the new object lives somewhere else entirely
                node.regions = tuple(Region.fresh_many(len(node.regions)))
        report = check_target(result.target, mode="none")
        assert not report.ok

    def test_downcast_pad_mismatch_rejected(self):
        src = """
        class A extends Object { Object fa; }
        class B extends A { Object fb; }
        int f() {
          A a = new B(null, null);
          B b = (B) a;
          1
        }
        """
        result = infer_and_check(src)
        method = result.target.static_named("f")
        for node in T.twalk(method.body):
            if isinstance(node, T.TCast) and node.type.name == "B":
                regions = list(node.type.regions)
                regions[-1] = Region.fresh("wrong")
                node.type = T.RClass("B", tuple(regions))
        report = check_target(result.target, downcast="padding")
        assert not report.ok

    def test_unsatisfied_callee_pre_rejected(self):
        result = self._fresh_result()
        scheme = result.schemes["unwrap"]
        abstraction = result.target.q[scheme.pre]
        params = abstraction.params
        from repro.regions import req

        # demand two independent caller regions be equal
        result.target.q.define(
            ConstraintAbstraction(abstraction.name, params, req(params[0], params[1]))
        )
        report = check_target(result.target)
        assert not report.ok

    def test_missing_no_dangling_invariant_rejected(self):
        result = self._fresh_result()
        anno = result.annotations["Box"]
        result.target.q.define(
            ConstraintAbstraction(anno.inv, anno.regions, TRUE)
        )
        report = check_target(result.target)
        assert not report.ok
        assert any("no-dangling" in str(i) for i in report.issues)


class TestModes(object):
    def test_object_annotations_fail_under_none_checking(self):
        """Annotations inferred with object subtyping use covariance the
        equivariant checker must reject (on a program that needs it)."""
        src = """
        class Box extends Object { int v; }
        int foo(Box a, Box b, bool c) {
          Box tmp;
          if (c) { tmp = a; } else { tmp = b; }
          tmp.v
        }
        """
        result = infer_and_check(src, mode=SubtypingMode.OBJECT)
        report = check_target(result.target, mode="none")
        assert not report.ok

    def test_none_annotations_pass_all_checkers(self):
        """Equivariant annotations are the strongest: every mode accepts."""
        result = infer_and_check(PAIR_SOURCE, mode=SubtypingMode.NONE)
        for mode in ("none", "object", "field"):
            assert check_target(result.target, mode=mode).ok
