"""Unit tests for runtime values and region statistics."""

import pytest

from repro.runtime import (
    NULL_VALUE,
    Obj,
    RegionManager,
    VBool,
    VInt,
    VNull,
    VObj,
    VOID_VALUE,
)
from repro.runtime.interp import _java_div, _same_value
from repro.runtime.regions_rt import RegionStats


class TestValues(object):
    def test_int_equality(self):
        assert VInt(3) == VInt(3)
        assert VInt(3) != VInt(4)

    def test_null_singleton_compares_equal(self):
        assert _same_value(NULL_VALUE, VNull())

    def test_object_identity(self):
        a = Obj("A", {})
        assert _same_value(VObj(a), VObj(a))
        assert not _same_value(VObj(a), VObj(Obj("A", {})))

    def test_cross_kind_never_equal(self):
        assert not _same_value(VInt(0), VBool(False))
        assert not _same_value(VInt(0), NULL_VALUE)

    def test_object_size_model(self):
        assert Obj("A", {}).size == 16
        assert Obj("A", {"x": VInt(0), "y": VInt(0)}).size == 32

    def test_value_strings(self):
        assert str(VInt(5)) == "5"
        assert str(VBool(True)) == "true"
        assert str(NULL_VALUE) == "null"
        assert str(VOID_VALUE) == "void"


class TestJavaDiv(object):
    @pytest.mark.parametrize(
        "a,b,q",
        [(7, 2, 3), (-7, 2, -3), (7, -2, -3), (-7, -2, 3), (6, 3, 2), (-6, 3, -2)],
    )
    def test_truncates_toward_zero(self, a, b, q):
        assert _java_div(a, b) == q

    @pytest.mark.parametrize("a,b", [(7, 3), (-7, 3), (7, -3), (-7, -3)])
    def test_mod_identity(self, a, b):
        assert _java_div(a, b) * b + (a - b * _java_div(a, b)) == a


class TestRegionStats(object):
    def test_empty_ratio_is_zero(self):
        assert RegionStats().space_usage_ratio == 0.0

    def test_ratio(self):
        s = RegionStats(total_allocated=200, peak_live=50)
        assert s.space_usage_ratio == pytest.approx(0.25)

    def test_manager_counts_regions(self):
        mgr = RegionManager()
        for _ in range(3):
            r = mgr.push()
            mgr.pop(r)
        assert mgr.stats.regions_created == 3
        assert mgr.depth == 0

    def test_heap_always_live(self):
        mgr = RegionManager()
        mgr.allocate(mgr.heap, 100)
        assert mgr.heap.live
        assert mgr.stats.peak_live == 100

    def test_nested_lifetimes(self):
        mgr = RegionManager()
        outer = mgr.push("outer")
        mgr.allocate(outer, 10)
        for _ in range(5):
            inner = mgr.push("inner")
            mgr.allocate(inner, 100)
            mgr.pop(inner)
        mgr.pop(outer)
        assert mgr.stats.total_allocated == 510
        assert mgr.stats.peak_live == 110
