"""Tests for the region-based interpreter and the region-stack allocator."""

import pytest

from repro.core import SubtypingMode
from repro.runtime import (
    CastFailedError,
    DanglingAccessError,
    Interpreter,
    NullAccessError,
    RegionManager,
    StepBudgetExceeded,
    VBool,
    VInt,
)
from repro.runtime.regions_rt import RuntimeRegion
from tests.conftest import infer_and_check


def run(src, entry, args=(), mode=SubtypingMode.FIELD, **kw):
    result = infer_and_check(src, mode=mode)
    interp = Interpreter(result.target, **kw)
    value = interp.run_static(entry, list(args))
    return value, interp


class TestArithmetic(object):
    def test_basic_ops(self):
        v, _ = run("int f() { 2 + 3 * 4 - 1 }", "f")
        assert v == VInt(13)

    def test_division_truncates_toward_zero(self):
        v, _ = run("int f() { (0 - 7) / 2 }", "f")
        assert v == VInt(-3)

    def test_modulo_sign_follows_dividend(self):
        v, _ = run("int f() { (0 - 7) % 3 }", "f")
        assert v == VInt(-1)

    def test_division_by_zero(self):
        from repro.runtime import RuntimeError_

        result = infer_and_check("int f(int n) { 1 / n }")
        with pytest.raises(RuntimeError_):
            Interpreter(result.target).run_static("f", [0])

    def test_comparisons(self):
        v, _ = run("bool f() { 3 < 4 && 4 <= 4 && 5 > 4 && 4 >= 4 }", "f")
        assert v == VBool(True)

    def test_short_circuit_and(self):
        # the second operand would divide by zero if evaluated
        v, _ = run("bool f(int n) { n > 0 && 10 / n > 1 }", "f", [0])
        assert v == VBool(False)

    def test_short_circuit_or(self):
        v, _ = run("bool f(int n) { n == 0 || 10 / n > 1 }", "f", [0])
        assert v == VBool(True)

    def test_unary(self):
        v, _ = run("int f() { -(3 + 4) }", "f")
        assert v == VInt(-7)
        v, _ = run("bool f() { !(1 == 2) }", "f")
        assert v == VBool(True)


class TestObjects(object):
    BOX = "class Box extends Object { int v; }"

    def test_new_and_field_read(self):
        v, _ = run(self.BOX + " int f() { Box b = new Box(41); b.v + 1 }", "f")
        assert v == VInt(42)

    def test_field_write(self):
        v, _ = run(
            self.BOX + " int f() { Box b = new Box(0); b.v = 9; b.v }", "f"
        )
        assert v == VInt(9)

    def test_null_field_read_raises(self):
        result = infer_and_check(self.BOX + " int f() { Box b = (Box) null; b.v }")
        with pytest.raises(NullAccessError):
            Interpreter(result.target).run_static("f")

    def test_reference_equality(self):
        src = self.BOX + """
        bool f() {
          Box a = new Box(1);
          Box b = new Box(1);
          Box c = a;
          a == c && !(a == b) && a != b
        }
        """
        v, _ = run(src, "f")
        assert v == VBool(True)

    def test_instance_method_dispatch(self):
        src = """
        class A extends Object { int tag; int who() { 1 } }
        class B extends A { int who() { 2 } }
        int f() {
          A x = new B(0);
          x.who()
        }
        """
        v, _ = run(src, "f")
        assert v == VInt(2)

    def test_failed_downcast_raises(self):
        src = """
        class A extends Object { int t; }
        class B extends A { int x; }
        int f() { A a = new A(0); ((B) a).x }
        """
        result = infer_and_check(src)
        with pytest.raises(CastFailedError):
            Interpreter(result.target).run_static("f")

    def test_null_cast_is_fine(self):
        src = """
        class A extends Object { int t; }
        class B extends A { int x; }
        bool f() { A a = (A) null; (B) a == null }
        """
        v, _ = run(src, "f")
        assert v == VBool(True)


class TestRegionsAtRuntime(object):
    BOX = "class Box extends Object { int v; }"

    def test_letreg_reclaims_space(self):
        src = self.BOX + """
        int f(int n) {
          int i = 0;
          int acc = 0;
          while (i < n) {
            Box t = new Box(i);
            acc = acc + t.v;
            i = i + 1;
          }
          acc
        }
        """
        v, interp = run(src, "f", [100])
        assert v == VInt(4950)
        stats = interp.stats
        assert stats.objects_allocated == 100
        # per-iteration regions mean the peak is far below the total
        assert stats.peak_live < stats.total_allocated / 10
        assert stats.regions_created > 100  # one per iteration plus top

    def test_retained_data_not_reclaimed(self):
        src = """
        class IntList extends Object { int value; IntList next; }
        IntList f(int n) {
          IntList acc = (IntList) null;
          int i = 0;
          while (i < n) { acc = new IntList(i, acc); i = i + 1; }
          acc
        }
        """
        _, interp = run(src, "f", [50])
        assert interp.stats.space_usage_ratio == pytest.approx(1.0)

    def test_step_budget(self):
        src = "int f(int n) { if (n == 0) { 0 } else { f(n - 1) } }"
        result = infer_and_check(src)
        interp = Interpreter(result.target, step_budget=50)
        with pytest.raises(StepBudgetExceeded):
            interp.run_static("f", [10000])

    def test_region_manager_stack_discipline(self):
        mgr = RegionManager()
        a = mgr.push("a")
        b = mgr.push("b")
        with pytest.raises(RuntimeError):
            mgr.pop(a)  # b is younger and still live
        mgr.pop(b)
        mgr.pop(a)
        assert not a.live and not b.live

    def test_allocation_into_dead_region_rejected(self):
        mgr = RegionManager()
        r = mgr.push("r")
        mgr.pop(r)
        with pytest.raises(DanglingAccessError):
            mgr.allocate(r, 8)

    def test_peak_accounting(self):
        mgr = RegionManager()
        a = mgr.push("a")
        mgr.allocate(a, 100)
        b = mgr.push("b")
        mgr.allocate(b, 50)
        mgr.pop(b)
        mgr.allocate(a, 10)
        mgr.pop(a)
        assert mgr.stats.total_allocated == 160
        assert mgr.stats.peak_live == 150


class TestDispatchRegions(object):
    def test_subclass_dispatch_through_super_view(self):
        """An overriding method sees its full class regions even when the
        call's static receiver type is the superclass (type passing)."""
        src = """
        class A extends Object {
          Object a1;
          Object get() { a1 }
        }
        class B extends A {
          Object b1;
          Object get() { b1 }
        }
        Object f() {
          A x = new B(new Object(), new Object());
          x.get()
        }
        """
        v, _ = run(src, "f", mode=SubtypingMode.OBJECT)
        assert v is not None


class TestRecursionLimit(object):
    """The interpreter manages its own Python stack headroom (the old
    ``sys.setrecursionlimit`` hack of ``__main__.cmd_run``, now a runtime
    option so library users get the same behaviour as the CLI)."""

    DEEP = """
    int sum(int n) { if (n <= 0) { 0 } else { n + sum(n - 1) } }
    """

    def test_default_limit_allows_deep_recursion(self):
        import sys

        result = infer_and_check(self.DEEP)
        old = sys.getrecursionlimit()
        sys.setrecursionlimit(1200)  # far too small for the tree-walker
        try:
            interp = Interpreter(result.target)
            value = interp.run_static("sum", [2000])
            # the tight ambient limit is restored afterwards
            assert sys.getrecursionlimit() == 1200
        finally:
            sys.setrecursionlimit(old)
        assert value == VInt(2001000)

    def test_limit_is_never_lowered(self):
        import sys

        result = infer_and_check(self.DEEP)
        interp = Interpreter(result.target, recursion_limit=10)
        assert interp.run_static("sum", [5]) == VInt(15)
        assert sys.getrecursionlimit() >= 1000

    def test_opt_out_respects_ambient_limit(self):
        import sys

        result = infer_and_check(self.DEEP)
        old = sys.getrecursionlimit()
        sys.setrecursionlimit(1200)
        try:
            interp = Interpreter(result.target, recursion_limit=None)
            with pytest.raises(RecursionError):
                interp.run_static("sum", [2000])
        finally:
            sys.setrecursionlimit(old)
