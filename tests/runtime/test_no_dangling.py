"""The no-dangling safety property, dynamically.

Theorem 1's payoff: running any inferred program under the region
interpreter never raises :class:`DanglingAccessError`.  Exercised over the
benchmark corpus and over purpose-built stress programs whose *naive*
region placements would dangle.
"""

import pytest

from repro.bench import OLDEN_PROGRAMS, REGJAVA_PROGRAMS
from repro.core import InferenceConfig, SubtypingMode, infer_source
from repro.runtime import DanglingAccessError, Interpreter
from repro.lang import target as T
from repro.regions import Region

_MODES = (SubtypingMode.NONE, SubtypingMode.OBJECT, SubtypingMode.FIELD)


@pytest.mark.parametrize("mode", _MODES, ids=lambda m: m.value)
@pytest.mark.parametrize("name", sorted(REGJAVA_PROGRAMS))
def test_regjava_never_dangles(name, mode):
    program = REGJAVA_PROGRAMS[name]
    result = infer_source(program.source, InferenceConfig(mode=mode))
    interp = Interpreter(result.target, check_dangling=True)
    interp.run_static(program.entry, list(program.test_args))


@pytest.mark.parametrize("name", sorted(OLDEN_PROGRAMS))
def test_olden_never_dangles(name):
    program = OLDEN_PROGRAMS[name]
    result = infer_source(program.source, InferenceConfig())
    interp = Interpreter(result.target, check_dangling=True)
    interp.run_static(program.entry, list(program.test_args))


class TestStressPrograms(object):
    """Programs engineered to dangle under naive placement."""

    def _run(self, src, entry, args=(), mode=SubtypingMode.FIELD):
        result = infer_source(src, InferenceConfig(mode=mode))
        interp = Interpreter(result.target, check_dangling=True)
        return interp.run_static(entry, list(args))

    def test_escaping_through_field(self):
        src = """
        class Box extends Object { Object item; }
        Box smuggle() {
          Box outer = new Box(null);
          int i = 0;
          while (i < 10) {
            outer.item = new Object();
            i = i + 1;
          }
          outer
        }
        int f() {
          Box b = smuggle();
          if (b.item == null) { 0 } else { 1 }
        }
        """
        assert self._run(src, "f").value == 1

    def test_escaping_through_deep_return(self):
        src = """
        class IntList extends Object { int value; IntList next; }
        IntList depth(int n) {
          if (n == 0) { new IntList(0, (IntList) null) }
          else { new IntList(n, depth(n - 1)) }
        }
        int walk(IntList l) {
          if (l == null) { 0 } else { l.value + walk(l.next) }
        }
        int f() { walk(depth(30)) }
        """
        assert self._run(src, "f").value == sum(range(31))

    def test_alias_into_longer_lived_structure(self):
        src = """
        class Node extends Object { Object payload; Node next; }
        Node weave(int n) {
          Node head = new Node(null, (Node) null);
          Node cur = head;
          int i = 0;
          while (i < n) {
            Node fresh = new Node(new Object(), (Node) null);
            cur.next = fresh;
            cur = fresh;
            i = i + 1;
          }
          head
        }
        int count(Node l) { if (l == null) { 0 } else { 1 + count(l.next) } }
        int f() { count(weave(15)) }
        """
        assert self._run(src, "f").value == 16

    def test_dangling_oracle_fires_on_corrupted_program(self):
        """Sanity: the oracle is real -- a hand-corrupted placement that
        frees escaping data does raise."""
        src = """
        class Box extends Object { int v; }
        Box mk() { new Box(5) }
        int f() {
          Box b = mk();
          b.v
        }
        """
        result = infer_source(src, InferenceConfig())
        mk = result.target.static_named("mk")
        # wrap mk's body in a letreg and force the allocation into it,
        # simulating an unsound "localise everything" transformation
        bad = Region.fresh("bad")
        for node in T.twalk(mk.body):
            if isinstance(node, T.TNew):
                node.regions = (bad,) + node.regions[1:]
        mk.body = T.TLetreg(regions=(bad,), body=mk.body, type=mk.body.type)
        interp = Interpreter(result.target, check_dangling=True)
        with pytest.raises(DanglingAccessError):
            interp.run_static("f")
