"""Bisimulation: the inferred program's observable behaviour equals the
source program's (paper Sec 4.5, "same observable behaviour through
region erasure").

The region interpreter runs the annotated target; the region-free source
interpreter runs the original.  Results are compared structurally (value
snapshots handle object graphs and cycles).
"""

import pytest

from repro.bench import OLDEN_PROGRAMS, REGJAVA_PROGRAMS
from repro.core import InferenceConfig, SubtypingMode, infer_program
from repro.frontend import parse_program
from repro.runtime import Interpreter, SourceInterpreter
from repro.runtime.source_interp import value_snapshot

_MODES = (SubtypingMode.NONE, SubtypingMode.OBJECT, SubtypingMode.FIELD)


def _bisimulate(src, entry, args, mode=SubtypingMode.FIELD):
    program = parse_program(src)
    result = infer_program(program, InferenceConfig(mode=mode))
    target_value = Interpreter(result.target).run_static(entry, list(args))
    source_value = SourceInterpreter(parse_program(src)).run_static(
        entry, list(args)
    )
    assert value_snapshot(target_value) == value_snapshot(source_value)
    return target_value


@pytest.mark.parametrize("name", sorted(REGJAVA_PROGRAMS))
def test_regjava_bisimulation(name):
    program = REGJAVA_PROGRAMS[name]
    value = _bisimulate(program.source, program.entry, program.test_args)
    if program.expected_test_result is not None:
        assert value.value == program.expected_test_result


@pytest.mark.parametrize("name", sorted(OLDEN_PROGRAMS))
def test_olden_bisimulation(name):
    program = OLDEN_PROGRAMS[name]
    _bisimulate(program.source, program.entry, program.test_args)


@pytest.mark.parametrize("mode", _MODES, ids=lambda m: m.value)
def test_mode_does_not_change_behaviour(mode):
    """Region subtyping affects placement, never values."""
    program = REGJAVA_PROGRAMS["mergesort"]
    _bisimulate(program.source, program.entry, (25,), mode=mode)


def test_object_graph_snapshot():
    src = """
    class Pair extends Object { Object fst; Object snd; }
    Pair f() {
      Pair a = new Pair(null, null);
      Pair b = new Pair(a, null);
      a.snd = b;
      b
    }
    """
    _bisimulate(src, "f", ())


def test_snapshot_detects_difference():
    from repro.runtime import VInt

    assert value_snapshot(VInt(1)) != value_snapshot(VInt(2))
