"""Differential fuzzing over the feature-toggle matrix.

Every combination of the five :class:`~repro.gen.GenSpec` feature
toggles, each across several seeds, goes through the full differential
oracle: parse -> typecheck -> infer (all three subtyping modes) ->
independent verify -> erasure round-trip -> source-vs-target
bisimulation.  Parametrizing by toggle combination means a failure names
the exact feature interaction that provoked it.
"""

import pytest

from repro.core import InferenceConfig, SubtypingMode, infer_program
from repro.frontend import parse_program
from repro.gen import GenSpec, check_program_invariants, feature_matrix, generate_source
from repro.lang.pretty import pretty_target

_TOGGLES = ("recursion", "loops", "downcasts", "overrides", "letreg")
_SEEDS = (0, 1, 2)


def _matrix_id(spec):
    on = [name for name in _TOGGLES if getattr(spec, name)]
    return "+".join(on) if on else "none"


MATRIX = feature_matrix(GenSpec(classes=5))


@pytest.mark.parametrize("spec", MATRIX, ids=_matrix_id)
def test_feature_combination_passes_oracle(spec):
    for seed in _SEEDS:
        member = spec.with_seed(seed)
        report = check_program_invariants(generate_source(member), args=(0, 3))
        report.raise_if_failed()
        assert report.checked_modes == ["none", "object", "field"]


def test_matrix_is_exhaustive():
    assert len(MATRIX) == 2 ** len(_TOGGLES)
    assert len({_matrix_id(s) for s in MATRIX}) == len(MATRIX)


@pytest.mark.parametrize("spec", MATRIX, ids=_matrix_id)
def test_footprint_scoped_inference_is_byte_identical(spec):
    """Footprint scoping gates reads; it must never change inference.

    Every feature combination is inferred twice -- once against the
    per-SCC footprint-restricted env view (the default), once against
    the whole env -- and the pretty-printed targets must agree byte for
    byte.  A footprint computed too small fails loudly instead
    (``FootprintViolation``), so this also sweeps the footprint
    closure over every generator feature.
    """
    source = generate_source(spec.with_seed(0))
    rendered = {}
    for scoped in (True, False):
        config = InferenceConfig(
            mode=SubtypingMode.FIELD, footprint_scope=scoped
        )
        result = infer_program(parse_program(source), config)
        rendered[scoped] = pretty_target(result.target)
    assert rendered[True] == rendered[False]
