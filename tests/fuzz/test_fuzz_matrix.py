"""Differential fuzzing over the feature-toggle matrix.

Every combination of the five :class:`~repro.gen.GenSpec` feature
toggles, each across several seeds, goes through the full differential
oracle: parse -> typecheck -> infer (all three subtyping modes) ->
independent verify -> erasure round-trip -> source-vs-target
bisimulation.  Parametrizing by toggle combination means a failure names
the exact feature interaction that provoked it.
"""

import pytest

from repro.gen import GenSpec, check_program_invariants, feature_matrix, generate_source

_TOGGLES = ("recursion", "loops", "downcasts", "overrides", "letreg")
_SEEDS = (0, 1, 2)


def _matrix_id(spec):
    on = [name for name in _TOGGLES if getattr(spec, name)]
    return "+".join(on) if on else "none"


MATRIX = feature_matrix(GenSpec(classes=5))


@pytest.mark.parametrize("spec", MATRIX, ids=_matrix_id)
def test_feature_combination_passes_oracle(spec):
    for seed in _SEEDS:
        member = spec.with_seed(seed)
        report = check_program_invariants(generate_source(member), args=(0, 3))
        report.raise_if_failed()
        assert report.checked_modes == ["none", "object", "field"]


def test_matrix_is_exhaustive():
    assert len(MATRIX) == 2 ** len(_TOGGLES)
    assert len({_matrix_id(s) for s in MATRIX}) == len(MATRIX)
