"""Seed-sweep fuzzing and generated-scale pipeline checks.

The sweep runs the full differential oracle over many seeds of the
default feature mix (chunked so a failure narrows to a 15-seed window).
The scale tests pin the acceptance shape: a ``GenSpec.sized(1000)``
program really is a 1k-class / >= 50k-line corpus that parses and
typechecks; the *full* parse -> infer -> verify -> execute run over it
takes ~10 minutes and is gated behind ``REPRO_GEN_SCALE=1``.
"""

import os

import pytest

from repro.core import SubtypingMode
from repro.frontend import parse_program
from repro.gen import GenSpec, check_program_invariants, generate_source
from repro.typing import check_program

_CHUNK = 15


@pytest.mark.parametrize("chunk", range(8))
def test_seed_sweep_passes_oracle(chunk):
    for seed in range(chunk * _CHUNK, (chunk + 1) * _CHUNK):
        spec = GenSpec(seed=seed, classes=6)
        report = check_program_invariants(generate_source(spec), args=(0, 3))
        report.raise_if_failed()
        assert report.executed_args == [0, 3]


def test_sized_smoke_program_full_oracle():
    # the ~100-line smoke end of the sizing curve, all three modes
    report = check_program_invariants(generate_source(GenSpec.sized(4, seed=1)))
    report.raise_if_failed()


def test_sized_moderate_program_oracle():
    # a ~1k-line program through the field-mode oracle end to end
    report = check_program_invariants(
        generate_source(GenSpec.sized(40, seed=2)),
        modes=(SubtypingMode.FIELD,),
        args=(2,),
    )
    report.raise_if_failed()


def test_thousand_class_corpus_parses_and_typechecks():
    source = generate_source(GenSpec.sized(1000))
    assert len(source.splitlines()) >= 50_000
    program = parse_program(source)
    assert len(program.classes) >= 1000
    check_program(program)


@pytest.mark.skipif(
    os.environ.get("REPRO_GEN_SCALE") != "1",
    reason="mid-tier scale run (~1 min); set REPRO_GEN_SCALE=1",
)
def test_three_hundred_class_infer_stays_near_linear():
    """Footprint-proportional inference: 3x the classes, ~3x the time.

    The budget is derived from the same-run 100-class sample rather
    than a wall-clock constant, so the assertion is host-independent:
    linear scaling predicts a 3x ratio, the old quadratic behaviour a
    9x one, and the 5x ceiling rejects any relapse while absorbing
    measurement noise.
    """
    from repro.bench.families import measure_gen_pipeline

    base = measure_gen_pipeline(100, rounds=2)
    mid = measure_gen_pipeline(300, rounds=2)
    for stage in ("infer_s", "verify_s"):
        ratio = mid[stage] / base[stage]
        assert ratio <= 5.0, (
            f"{stage} grew {ratio:.1f}x from 100 to 300 classes "
            f"({base[stage] * 1000:.0f}ms -> {mid[stage] * 1000:.0f}ms); "
            "near-linear scaling predicts ~3x"
        )


@pytest.mark.skipif(
    os.environ.get("REPRO_GEN_SCALE") != "1",
    reason="~10 min full-pipeline scale run; set REPRO_GEN_SCALE=1",
)
def test_thousand_class_corpus_full_pipeline():
    source = generate_source(GenSpec.sized(1000))
    report = check_program_invariants(
        source, modes=(SubtypingMode.FIELD,), args=(1,)
    )
    report.raise_if_failed()
