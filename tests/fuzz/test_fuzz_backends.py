"""Thread-vs-process backend byte-identity over generated corpora.

``Session.infer_many`` must produce byte-identical pretty-printed
targets regardless of the execution backend; any divergence would mean
inference results depend on process boundaries (pickling, import order,
hash randomization) rather than on the program alone.
"""

from repro.gen import GenSpec, generate_corpus, generate_source
from repro.gen.oracle import check_backend_identity


def test_backends_byte_identical_on_generated_corpus():
    corpus = generate_corpus(GenSpec(seed=4, classes=4), 10)
    failures = check_backend_identity([src for _, src in corpus], workers=2)
    assert not failures, failures


def test_backends_byte_identical_across_toggle_corners():
    sources = [
        generate_source(GenSpec(seed=21, classes=4)),
        generate_source(
            GenSpec(
                seed=22,
                classes=4,
                recursion=False,
                loops=False,
                downcasts=False,
                overrides=False,
                letreg=False,
            )
        ),
        generate_source(GenSpec(seed=23, classes=4, recursion=False)),
        generate_source(GenSpec(seed=24, classes=4, loops=False)),
    ]
    failures = check_backend_identity(sources, workers=2)
    assert not failures, failures
