"""Replay of the frozen fuzz-regression corpus in ``fixtures/``.

Every program a fuzzing sweep ever flagged (or that pins a
normalization-sensitive construct) is frozen here and replayed as a
plain tier-1 test: the file must still carry a spec header that
regenerates it byte-identically, and the full differential oracle must
still pass on it.  See ``fixtures/README.md`` for the provenance of
each member.
"""

import json
from pathlib import Path

import pytest

from repro.gen import GenSpec, check_program_invariants, generate_source, spec_of_source
from repro.gen.corpus import MANIFEST_NAME

FIXTURES = Path(__file__).parent / "fixtures"


def _manifest():
    return json.loads((FIXTURES / MANIFEST_NAME).read_text())


def _members():
    return [(entry["file"], entry["spec"]) for entry in _manifest()["programs"]]


def test_manifest_matches_directory():
    manifest = _manifest()
    assert manifest["schema"] == "repro-gen-corpus/1"
    files = sorted(p.name for p in FIXTURES.glob("*.cj"))
    assert sorted(name for name, _ in _members()) == files
    assert manifest["count"] == len(files)


@pytest.mark.parametrize("name,spec_dict", _members(), ids=lambda v: v if isinstance(v, str) else "")
def test_fixture_regenerates_byte_identically(name, spec_dict):
    source = (FIXTURES / name).read_text()
    spec = GenSpec.from_dict(spec_dict)
    assert spec_of_source(source) == spec
    assert generate_source(spec) == source


@pytest.mark.parametrize("name,spec_dict", _members(), ids=lambda v: v if isinstance(v, str) else "")
def test_fixture_passes_oracle(name, spec_dict):
    report = check_program_invariants((FIXTURES / name).read_text(), args=(0, 3))
    report.raise_if_failed()
