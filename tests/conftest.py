"""Shared fixtures and helpers for the test suite."""

import sys

import pytest

from repro.checking import check_target
from repro.core import InferenceConfig, SubtypingMode, infer_source

#: the Pair class of the paper's Fig 2(a)
PAIR_SOURCE = """
class Pair extends Object {
  Object fst;
  Object snd;
  Object getFst() { fst }
  void setSnd(Object o) { snd = o; }
  Pair cloneRev() {
    Pair tmp = new Pair(null, null);
    tmp.fst = snd;
    tmp.snd = fst;
    tmp
  }
  void swap() { Object tmp = fst; fst = snd; snd = tmp; }
}
"""

#: the List class of the paper's Fig 2(b)
LIST_SOURCE = """
class List extends Object {
  Object value;
  List next;
  Object getValue() { value }
  List getNext() { next }
  void setNext(List o) { next = o; }
}
"""

#: the recursive join of the paper's Fig 6
JOIN_SOURCE = """
class List extends Object {
  Object value;
  List next;
  Object getValue() { value }
  List getNext() { next }
}
bool isNull(List l) { l == (List) null }
List join(List xs, List ys) {
  if (isNull(xs)) {
    if (isNull(ys)) { (List) null } else { join(ys, xs) }
  } else {
    Object x;
    List res;
    x = xs.getValue();
    res = join(ys, xs.getNext());
    new List(x, res)
  }
}
"""


@pytest.fixture(autouse=True)
def _deep_recursion():
    old = sys.getrecursionlimit()
    sys.setrecursionlimit(400000)
    yield
    sys.setrecursionlimit(old)


def infer_and_check(source, mode=SubtypingMode.FIELD, **config_kwargs):
    """Infer annotations and require the checker to accept them."""
    config = InferenceConfig(mode=mode, **config_kwargs)
    result = infer_source(source, config)
    report = check_target(
        result.target, mode=mode.value, downcast=config.downcast.value
    )
    assert report.ok, [str(i) for i in report.issues[:5]]
    return result
