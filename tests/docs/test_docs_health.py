"""Docs health: no dead intra-repo links, and the quickstart really runs.

Two contracts keep the documentation suite from rotting:

* every relative markdown link in ``docs/*.md`` and ``README.md`` must
  resolve to a file that exists in the repository (http/https/mailto
  links and pure in-page anchors are out of scope — no network here);
* every fenced ``bash`` block in the README's **Quickstart** section is
  executed as a smoke command (with ``src`` on ``PYTHONPATH``, so the
  commands work uninstalled exactly as written for an installed
  package).  Put slow or illustrative commands in other sections — the
  Quickstart fences are the executable ones by convention, which is
  also what the CI docs-health step relies on.
"""

import os
import re
import subprocess
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[2]
DOC_FILES = sorted((ROOT / "docs").glob("*.md")) + [ROOT / "README.md"]

#: [label](target) — target captured up to the closing paren (markdown
#: titles/whitespace in targets are not used in this repo)
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FENCE_RE = re.compile(r"^```(\w*)\s*$")


def _strip_fenced_blocks(text):
    """Markdown with fenced code blocks removed (links inside snippets
    are code, not navigation)."""
    out, in_fence = [], False
    for line in text.splitlines():
        if FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if not in_fence:
            out.append(line)
    return "\n".join(out)


def _relative_links(path):
    for target in LINK_RE.findall(_strip_fenced_blocks(path.read_text())):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        yield target


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: p.name)
def test_intra_repo_links_resolve(doc):
    missing = []
    for target in _relative_links(doc):
        rel = target.split("#", 1)[0]
        if not rel:
            continue
        if not (doc.parent / rel).exists():
            missing.append(target)
    assert not missing, f"{doc.relative_to(ROOT)}: dead links {missing}"


def test_every_doc_page_is_reachable_from_readme():
    """README links every page under docs/ (directly or via one hop)."""
    reachable = set()
    frontier = [ROOT / "README.md"]
    seen = set()
    while frontier:
        doc = frontier.pop()
        if doc in seen or not doc.exists():
            continue
        seen.add(doc)
        for target in _relative_links(doc):
            resolved = (doc.parent / target.split("#", 1)[0]).resolve()
            if resolved.suffix == ".md":
                reachable.add(resolved)
                frontier.append(resolved)
    unreachable = [
        p.name for p in (ROOT / "docs").glob("*.md") if p.resolve() not in reachable
    ]
    assert not unreachable, f"docs pages not linked from README: {unreachable}"


# ---------------------------------------------------------------- quickstart


def _quickstart_blocks():
    """The fenced ``bash`` blocks of README.md's Quickstart section."""
    lines = (ROOT / "README.md").read_text().splitlines()
    blocks, block, in_section, fence_lang = [], [], False, None
    for line in lines:
        if line.startswith("## "):
            in_section = line.strip() == "## Quickstart"
            continue
        if not in_section:
            continue
        m = FENCE_RE.match(line)
        if m:
            if fence_lang is None:
                fence_lang = m.group(1)
            else:
                if fence_lang == "bash" and block:
                    blocks.append("\n".join(block))
                block, fence_lang = [], None
            continue
        if fence_lang is not None:
            block.append(line)
    return blocks


QUICKSTART_BLOCKS = _quickstart_blocks()


def test_quickstart_has_smoke_commands():
    assert len(QUICKSTART_BLOCKS) >= 3, (
        "README Quickstart lost its executable bash fences; the smoke "
        "coverage below silently disappears without them"
    )


@pytest.mark.parametrize(
    "block",
    QUICKSTART_BLOCKS,
    ids=[b.splitlines()[0][:60] for b in QUICKSTART_BLOCKS],
)
def test_quickstart_block_runs(block):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(
        ["bash", "-ec", block],
        cwd=ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert proc.returncode == 0, (
        f"quickstart block failed (exit {proc.returncode}):\n{block}\n"
        f"--- stdout ---\n{proc.stdout[-2000:]}\n"
        f"--- stderr ---\n{proc.stderr[-2000:]}"
    )
