"""Quick-mode regeneration of the Fig 8 table with shape assertions.

The full-size measurement lives in ``benchmarks/``; this test keeps the
table's qualitative content under ordinary ``pytest tests/`` so a
regression in any column is caught fast.
"""

import math

import pytest

from repro.bench import REGJAVA_PROGRAMS, fig8_rows, fig8_table


@pytest.fixture(scope="module")
def rows():
    return {r.name: r for r in fig8_rows(quick=True)}


class TestTableShape(object):
    def test_all_programs_present(self, rows):
        assert set(rows) == set(REGJAVA_PROGRAMS)

    def test_inference_under_a_second(self, rows):
        for r in rows.values():
            assert r.inference_seconds < 1.0

    def test_checking_under_a_second(self, rows):
        for r in rows.values():
            assert r.checking_seconds < 1.0

    def test_annotation_lines_positive(self, rows):
        for r in rows.values():
            assert r.annotation_lines > 0

    def test_no_reuse_rows(self, rows):
        for name in ("sieve", "naive-life", "opt-life-dangling", "opt-life-stack"):
            for mode in ("none", "object", "field"):
                assert rows[name].ratios[mode] == pytest.approx(1.0), (name, mode)

    def test_always_reuse_rows(self, rows):
        for name in ("ackermann", "mandelbrot"):
            for mode in ("none", "object", "field"):
                assert rows[name].ratios[mode] < 0.8, (name, mode)

    def test_reynolds3_crossover(self, rows):
        r = rows["reynolds3"].ratios
        assert r["none"] == pytest.approx(1.0)
        assert r["object"] == pytest.approx(1.0)
        assert r["field"] < r["none"]

    def test_foosum_crossover(self, rows):
        r = rows["foo-sum"].ratios
        assert r["object"] < r["none"]
        assert r["field"] == pytest.approx(r["object"], rel=0.3)

    def test_dangling_row_diff(self, rows):
        assert REGJAVA_PROGRAMS["opt-life-dangling"].paper.diff_vs_regjava == -1

    def test_ratios_are_valid_fractions(self, rows):
        for r in rows.values():
            for ratio in r.ratios.values():
                assert not math.isnan(ratio)
                assert 0.0 < ratio <= 1.0 + 1e-9

    def test_table_renders_all_rows(self, rows):
        text = fig8_table(list(rows.values()))
        for name in REGJAVA_PROGRAMS:
            assert name in text
