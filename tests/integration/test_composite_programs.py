"""Integration tests: larger composite programs through the full pipeline
(inference -> independent check -> region execution -> bisimulation).

These programs combine the features that interact in interesting ways:
deep inheritance with dynamic dispatch, mutually recursive structures,
loops building and discarding structures, downcasts, and methods returning
views of their parameters.
"""

import pytest

from repro.checking import check_target
from repro.core import InferenceConfig, SubtypingMode, infer_source
from repro.frontend import parse_program
from repro.runtime import Interpreter, SourceInterpreter
from repro.runtime.source_interp import value_snapshot

_MODES = (SubtypingMode.NONE, SubtypingMode.OBJECT, SubtypingMode.FIELD)

SHAPES = """
// dynamic dispatch over a small shape hierarchy with an accumulator
class Shape extends Object {
  int tag;
  int area() { 0 }
  int scaled(int k) { k * area() }
}
class Rect extends Shape {
  int w;
  int h;
  int area() { w * h }
}
class Square extends Rect {
  int unused;
  int area() { w * w }
}
class Circle extends Shape {
  int r;
  int area() { 3 * r * r }
}
class ShapeList extends Object {
  Shape item;
  ShapeList rest;
}

int total(ShapeList l) {
  if (l == null) { 0 } else { l.item.area() + total(l.rest) }
}

int main(int n) {
  ShapeList acc = (ShapeList) null;
  int i = 0;
  while (i < n) {
    Shape s = (Shape) null;
    if (i % 3 == 0) { s = new Rect(0, 2, 3); }
    else {
      if (i % 3 == 1) { s = new Square(0, 4, 4, 0); }
      else { s = new Circle(0, 2); }
    }
    acc = new ShapeList(s, acc);
    i = i + 1;
  }
  total(acc)
}
"""

EXPRESSION_EVALUATOR = """
// an arithmetic-expression tree evaluated by dispatch -- the classic
// OO interpreter pattern, with a builder that recurses
class Expr extends Object {
  int tag;
  int eval() { 0 }
}
class Lit extends Expr {
  int value;
  int eval() { value }
}
class Add extends Expr {
  Expr left;
  Expr right;
  int eval() { left.eval() + right.eval() }
}
class Mul extends Expr {
  Expr left2;
  Expr right2;
  int eval() { left2.eval() * right2.eval() }
}

Expr build(int depth, int seed) {
  if (depth == 0) { new Lit(0, seed % 7 + 1) }
  else {
    if (seed % 2 == 0) {
      new Add(1, build(depth - 1, seed * 3 + 1), build(depth - 1, seed + 5))
    } else {
      new Mul(2, build(depth - 1, seed + 2), build(depth - 1, seed * 2 + 3))
    }
  }
}

int main(int n) {
  Expr e = build(n, 13);
  e.eval()
}
"""

QUEUE_SIMULATION = """
// a FIFO queue processed in rounds; the queue cells die per round while
// the tally object survives -- a lifetime-mixing stress test
class Job extends Object {
  int cost;
  Job next;
}
class Tally extends Object {
  int done;
  int spent;
}

Job enqueue(Job q, int cost) { new Job(cost, q) }

void process(Job q, Tally t) {
  if (q == null) { }
  else {
    t.done = t.done + 1;
    t.spent = t.spent + q.cost;
    process(q.next, t)
  }
}

int main(int rounds) {
  Tally t = new Tally(0, 0);
  int r = 0;
  while (r < rounds) {
    Job q = (Job) null;
    int i = 0;
    while (i < 5) {
      q = enqueue(q, r + i);
      i = i + 1;
    }
    process(q, t);
    r = r + 1;
  }
  t.done * 1000 + t.spent
}
"""

GRAPH_COLOURING = """
// mutually recursive Node/Adj classes with an iterative greedy pass
class Node extends Object {
  int id;
  int colour;
  Adj adj;
  Node nextNode;
}
class Adj extends Object {
  Node to;
  Adj rest;
}

Node ring(int n) {
  if (n == 0) { (Node) null }
  else { new Node(n, 0 - 1, (Adj) null, ring(n - 1)) }
}

Node nth(Node l, int i) {
  if (i == 0) { l } else { nth(l.nextNode, i - 1) }
}

void connectRing(Node first, Node cur) {
  if (cur == null) { }
  else {
    Node succ = cur.nextNode;
    if (succ == null) { succ = first; } else { }
    cur.adj = new Adj(succ, cur.adj);
    succ.adj = new Adj(cur, succ.adj);
    connectRing(first, cur.nextNode)
  }
}

bool used(Adj a, int c) {
  if (a == null) { false }
  else {
    if (a.to.colour == c) { true } else { used(a.rest, c) }
  }
}

void greedy(Node l) {
  if (l == null) { }
  else {
    int c = 0;
    while (used(l.adj, c)) { c = c + 1; }
    l.colour = c;
    greedy(l.nextNode)
  }
}

int sumColours(Node l) {
  if (l == null) { 0 } else { l.colour + sumColours(l.nextNode) }
}

int main(int n) {
  Node g = ring(n);
  connectRing(g, g);
  greedy(g);
  sumColours(g)
}
"""

PROGRAMS = {
    "shapes": SHAPES,
    "expression-evaluator": EXPRESSION_EVALUATOR,
    "queue-simulation": QUEUE_SIMULATION,
    "graph-colouring": GRAPH_COLOURING,
}

_ARGS = {
    "shapes": 12,
    "expression-evaluator": 4,
    "queue-simulation": 6,
    "graph-colouring": 8,
}


@pytest.mark.parametrize("mode", _MODES, ids=lambda m: m.value)
@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_pipeline(name, mode):
    src = PROGRAMS[name]
    result = infer_source(src, InferenceConfig(mode=mode))
    report = check_target(result.target, mode=mode.value)
    assert report.ok, [str(i) for i in report.issues[:5]]

    interp = Interpreter(result.target, check_dangling=True)
    got = interp.run_static("main", [_ARGS[name]])
    want = SourceInterpreter(parse_program(src)).run_static("main", [_ARGS[name]])
    assert value_snapshot(got) == value_snapshot(want)


def test_queue_cells_are_reclaimed_per_round():
    result = infer_source(QUEUE_SIMULATION, InferenceConfig())
    interp = Interpreter(result.target)
    interp.run_static("main", [40])
    stats = interp.stats
    # 40 rounds x 5 jobs plus the tally; peak stays around one round
    assert stats.objects_allocated == 201
    assert stats.space_usage_ratio < 0.25


def test_shapes_list_is_retained():
    result = infer_source(SHAPES, InferenceConfig())
    interp = Interpreter(result.target)
    interp.run_static("main", [30])
    assert interp.stats.space_usage_ratio == pytest.approx(1.0)


def test_expression_tree_dispatch_result():
    src = EXPRESSION_EVALUATOR
    value = SourceInterpreter(parse_program(src)).run_static("main", [3])
    result = infer_source(src, InferenceConfig())
    got = Interpreter(result.target).run_static("main", [3])
    assert got == value
