"""Miscellaneous inference-engine behaviours: result metadata, error
paths, configuration surface, and inheritance layout edge cases."""

import pytest

from repro.core import (
    InferenceConfig,
    InferenceError,
    RegionInference,
    SubtypingMode,
    infer_source,
)
from repro.frontend import parse_program
from repro.lang import target as T
from repro.regions import HEAP, RegionSolver
from repro.typing import NormalTypeError
from tests.conftest import PAIR_SOURCE, infer_and_check


class TestResultMetadata(object):
    def test_elapsed_recorded(self):
        result = infer_source(PAIR_SOURCE, InferenceConfig())
        assert result.elapsed > 0

    def test_localized_regions_per_method(self):
        result = infer_source(PAIR_SOURCE, InferenceConfig())
        assert "Pair.cloneRev" in result.localized_regions

    def test_fixpoint_iterations_keyed_by_scc(self):
        result = infer_source(PAIR_SOURCE, InferenceConfig())
        assert all(isinstance(k, tuple) for k in result.fixpoint_iterations)

    def test_total_localized(self):
        result = infer_source(PAIR_SOURCE, InferenceConfig())
        assert result.total_localized == sum(result.localized_regions.values())

    def test_config_retained(self):
        config = InferenceConfig(mode=SubtypingMode.NONE)
        result = infer_source(PAIR_SOURCE, config)
        assert result.config is config


class TestErrorPaths(object):
    def test_ill_typed_program_rejected_before_inference(self):
        with pytest.raises(NormalTypeError):
            infer_source("int f() { missing }")

    def test_unknown_class_rejected(self):
        with pytest.raises(NormalTypeError):
            infer_source("Nope f() { (Nope) null }")

    def test_engine_reusable_via_class_api(self):
        program = parse_program(PAIR_SOURCE)
        engine = RegionInference(program)
        result = engine.infer()
        assert engine.result is result


class TestInheritanceLayouts(object):
    def test_grandchild_prefix(self):
        src = """
        class A extends Object { Object a1; }
        class B extends A { Object b1; }
        class C extends B { Object c1; }
        """
        result = infer_and_check(src)
        a = result.annotations["A"]
        b = result.annotations["B"]
        c = result.annotations["C"]
        assert c.regions[: b.arity] == c.super_regions
        assert b.regions[: a.arity] == b.super_regions
        assert c.arity == 4

    def test_recursive_subclass_of_plain_superclass(self):
        src = """
        class Base extends Object { Object tag; }
        class Chain extends Base { Chain next; }
        """
        result = infer_and_check(src)
        chain = result.annotations["Chain"]
        assert chain.rec_region == chain.regions[-1]
        nxt = chain.own_field_types["next"]
        assert nxt.regions[0] == chain.rec_region
        assert len(nxt.regions) == chain.arity

    def test_primitive_only_hierarchy(self):
        src = """
        class P extends Object { int x; bool b; }
        class Q extends P { int y; }
        int f(Q q) { q.x + q.y }
        """
        result = infer_and_check(src)
        assert result.annotations["Q"].arity == 1

    def test_this_type_uses_class_formals(self):
        src = "class A { Object x; A self() { this } }"
        result = infer_and_check(src)
        method = result.target.class_named("A").method("self")
        # the body returns this: result regions tie back to class formals
        scheme = result.schemes["A.self"]
        anno = result.annotations["A"]
        pre = result.target.q[scheme.pre].body
        solver = RegionSolver(pre)
        # returning this forces the result view to be outlived by r1
        r_ret_first = scheme.region_params[0]
        assert solver.entails_outlives(anno.regions[0], r_ret_first)


class TestHeapUsage(object):
    def test_simple_programs_avoid_heap(self):
        """No region should be forced onto the heap in these programs."""
        result = infer_and_check(PAIR_SOURCE)
        for method in result.target.all_methods():
            for node in T.twalk(method.body):
                if isinstance(node, T.TNew):
                    assert not node.regions[0].is_heap

    def test_static_entry_allocations_are_method_scoped(self):
        src = """
        class Box extends Object { int v; }
        int f() {
          Box b = new Box(3);
          b.v
        }
        """
        result = infer_and_check(src)
        body = result.target.static_named("f").body
        assert isinstance(body, T.TLetreg)


class TestDeterminism(object):
    def test_repeated_inference_same_shape(self):
        """Region uids differ between runs but the structure must not."""
        from repro.lang.pretty import pretty_target

        t1 = pretty_target(infer_source(PAIR_SOURCE, InferenceConfig()).target)
        t2 = pretty_target(infer_source(PAIR_SOURCE, InferenceConfig()).target)
        assert t1 == t2
