"""The two loop treatments agree (paper Sec 2).

The engine handles ``while`` directly with the flow-insensitive loop rule;
``convert_loops`` produces the paper's by-reference tail-recursive form.
Both must be inferable, checkable, and must impose equivalent constraints
on the *shared* interface (the enclosing method's regions).
"""

import pytest

from repro.checking import check_target
from repro.core import InferenceConfig, SubtypingMode, infer_program, infer_source
from repro.frontend import convert_loops, parse_program
from repro.regions import RegionSolver
from repro.typing import check_program

PROGRAMS = {
    "accumulator": """
    class Box extends Object { int v; }
    int f(int n) {
      Box acc = new Box(0);
      int i = 0;
      while (i < n) {
        acc.v = acc.v + i;
        i = i + 1;
      }
      acc.v
    }
    """,
    "list-building": """
    class IntList extends Object { int value; IntList next; }
    IntList f(int n) {
      IntList acc = (IntList) null;
      int i = 0;
      while (i < n) {
        acc = new IntList(i, acc);
        i = i + 1;
      }
      acc
    }
    """,
    "nested": """
    class Box extends Object { int v; }
    int f(int n) {
      Box total = new Box(0);
      int i = 0;
      while (i < n) {
        int j = 0;
        while (j < n) {
          Box t = new Box(i * j);
          total.v = total.v + t.v;
          j = j + 1;
        }
        i = i + 1;
      }
      total.v
    }
    """,
}


@pytest.mark.parametrize("name", sorted(PROGRAMS))
@pytest.mark.parametrize(
    "mode", [SubtypingMode.NONE, SubtypingMode.OBJECT, SubtypingMode.FIELD],
    ids=lambda m: m.value,
)
def test_both_paths_check(name, mode):
    src = PROGRAMS[name]
    direct = infer_source(src, InferenceConfig(mode=mode))
    assert check_target(direct.target, mode=mode.value).ok

    converted_program = parse_program(src)
    check_program(converted_program)  # elaborate implicit this
    converted_program = convert_loops(converted_program)
    converted = infer_program(converted_program, InferenceConfig(mode=mode))
    assert check_target(converted.target, mode=mode.value).ok


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_interface_constraints_agree(name):
    """pre.f is equivalent under both loop treatments."""
    src = PROGRAMS[name]
    direct = infer_source(src, InferenceConfig(mode=SubtypingMode.OBJECT))
    converted_program = convert_loops(parse_program(src))
    converted = infer_program(
        converted_program, InferenceConfig(mode=SubtypingMode.OBJECT)
    )

    def pre_shape(result):
        scheme = result.schemes["f"]
        params = scheme.abstraction_params
        solver = RegionSolver(result.target.q[scheme.pre].body)
        return frozenset(
            (i, j)
            for i in range(len(params))
            for j in range(len(params))
            if i != j and solver.entails_outlives(params[i], params[j])
        )

    assert pre_shape(direct) == pre_shape(converted)


def test_by_ref_parameters_equate_regions():
    """Loop-method arguments are passed by reference: regions equated."""
    src = PROGRAMS["list-building"]
    converted_program = convert_loops(parse_program(src))
    result = infer_program(
        converted_program, InferenceConfig(mode=SubtypingMode.OBJECT)
    )
    assert check_target(result.target, mode="object").ok
    loop_name = next(
        m.qualified_name
        for m in converted_program.statics
        if m.by_ref
    )
    assert loop_name in result.schemes
