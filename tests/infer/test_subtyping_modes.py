"""Tests for the three region-subtyping modes (paper Sec 3.2)."""

import pytest

from repro.core import InferenceConfig, SubtypingMode, infer_source
from repro.core.subtyping import SubtypeJudgement, subtype
from repro.lang import target as T
from repro.regions import Outlives, RegionEq, RegionSolver
from tests.conftest import infer_and_check

FOO = """
class Box extends Object { int v; }
int foo(Box a, Box b, bool c) {
  Box tmp;
  if (c) { tmp = a; } else { tmp = b; }
  tmp.v
}
"""

RLIST = """
class RList extends Object {
  Object value;
  RList next;
}
int len(RList l) { if (l == null) { 0 } else { 1 + len(l.next) } }
RList cons(Object x, RList tail) { new RList(x, tail) }
"""


class TestFooExample(object):
    """The paper's Sec 3.2 motivating example for object subtyping."""

    def test_no_subtyping_coalesces_a_and_b(self):
        result = infer_and_check(FOO, mode=SubtypingMode.NONE)
        scheme = result.schemes["foo"]
        ra, rb = scheme.region_params[0], scheme.region_params[1]
        solver = RegionSolver(result.target.q[scheme.pre].body)
        assert solver.same_region(ra, rb)

    def test_object_subtyping_keeps_a_and_b_distinct(self):
        result = infer_and_check(FOO, mode=SubtypingMode.OBJECT)
        scheme = result.schemes["foo"]
        ra, rb = scheme.region_params[0], scheme.region_params[1]
        solver = RegionSolver(result.target.q[scheme.pre].body)
        assert not solver.same_region(ra, rb)

    def test_field_subtyping_also_keeps_them_distinct(self):
        result = infer_and_check(FOO, mode=SubtypingMode.FIELD)
        scheme = result.schemes["foo"]
        ra, rb = scheme.region_params[0], scheme.region_params[1]
        solver = RegionSolver(result.target.q[scheme.pre].body)
        assert not solver.same_region(ra, rb)


class TestSubtypeRule(object):
    def _mk(self, src):
        result = infer_and_check(src)
        return result

    def test_same_class_none_mode_all_equal(self):
        result = self._mk(RLIST)
        anno = result.annotations["RList"]
        src_t = T.RClass("RList", anno.regions)
        dst_t = T.RClass("RList", tuple(reversed(anno.regions)))
        j = subtype(
            src_t, dst_t, SubtypingMode.NONE, result.table, result.annotations
        )
        assert all(isinstance(a, RegionEq) for a in j.constraint.atoms)

    def test_same_class_object_mode_first_covariant(self):
        result = self._mk(RLIST)
        anno = result.annotations["RList"]
        from repro.regions import Region

        fresh = Region.fresh_many(3)
        j = subtype(
            T.RClass("RList", anno.regions),
            T.RClass("RList", fresh),
            SubtypingMode.OBJECT,
            result.table,
            result.annotations,
        )
        assert Outlives(anno.regions[0], fresh[0]) in j.constraint.atoms
        assert RegionEq(anno.regions[1], fresh[1]).normalized() in {
            a.normalized() if isinstance(a, RegionEq) else a
            for a in j.constraint.atoms
        }

    def test_field_mode_rec_region_covariant_when_readonly(self):
        result = self._mk(RLIST)
        anno = result.annotations["RList"]
        from repro.regions import Region

        fresh = Region.fresh_many(3)
        j = subtype(
            T.RClass("RList", anno.regions),
            T.RClass("RList", fresh),
            SubtypingMode.FIELD,
            result.table,
            result.annotations,
        )
        assert Outlives(anno.regions[2], fresh[2]) in j.constraint.atoms

    def test_field_mode_falls_back_when_mutable(self):
        src = """
        class MList extends Object {
          Object value;
          MList next;
          void setNext(MList o) { next = o; }
        }
        """
        result = self._mk(src)
        anno = result.annotations["MList"]
        from repro.regions import Region

        fresh = Region.fresh_many(3)
        j = subtype(
            T.RClass("MList", anno.regions),
            T.RClass("MList", fresh),
            SubtypingMode.FIELD,
            result.table,
            result.annotations,
        )
        # next is mutated somewhere: the recursive region stays equivariant
        eqs = {a for a in j.constraint.atoms if isinstance(a, RegionEq)}
        assert any(anno.regions[2] in a.regions() for a in eqs)

    def test_subclass_prefix_truncation(self):
        src = """
        class A extends Object { Object x; }
        class B extends A { Object y; }
        """
        result = self._mk(src)
        from repro.regions import Region

        b = result.annotations["B"]
        a_fresh = Region.fresh_many(result.annotations["A"].arity)
        j = subtype(
            T.RClass("B", b.regions),
            T.RClass("A", a_fresh),
            SubtypingMode.OBJECT,
            result.table,
            result.annotations,
        )
        # the subclass-only regions are reported as lost
        assert set(j.lost) == set(b.regions[result.annotations["A"].arity :])

    def test_unrelated_classes_rejected(self):
        src = "class A { } class B { }"
        result = self._mk(src)
        from repro.core import InferenceError
        from repro.regions import Region

        with pytest.raises(InferenceError):
            subtype(
                T.RClass("A", Region.fresh_many(1)),
                T.RClass("B", Region.fresh_many(1)),
                SubtypingMode.OBJECT,
                result.table,
                result.annotations,
            )

    def test_by_ref_forces_equivariance(self):
        result = self._mk(RLIST)
        anno = result.annotations["RList"]
        from repro.regions import Region

        fresh = Region.fresh_many(3)
        j = subtype(
            T.RClass("RList", anno.regions),
            T.RClass("RList", fresh),
            SubtypingMode.FIELD,
            result.table,
            result.annotations,
            by_ref=True,
        )
        assert all(isinstance(a, RegionEq) for a in j.constraint.atoms)


class TestModePrecisionOrdering(object):
    """FIELD refines OBJECT refines NONE: fewer forced identifications."""

    def _merged_pairs(self, result, qualified):
        scheme = result.schemes[qualified]
        solver = RegionSolver(result.target.q[scheme.pre].body)
        params = scheme.abstraction_params
        return sum(
            1
            for i in range(len(params))
            for j in range(i + 1, len(params))
            if solver.same_region(params[i], params[j])
        )

    @pytest.mark.parametrize("src,entry", [(FOO, "foo"), (RLIST, "cons")])
    def test_ordering(self, src, entry):
        counts = {}
        for mode in (SubtypingMode.NONE, SubtypingMode.OBJECT, SubtypingMode.FIELD):
            result = infer_and_check(src, mode=mode)
            counts[mode] = self._merged_pairs(result, entry)
        assert counts[SubtypingMode.FIELD] <= counts[SubtypingMode.OBJECT]
        assert counts[SubtypingMode.OBJECT] <= counts[SubtypingMode.NONE]
