"""Golden tests against the paper's Fig 4 (localised regions) and the
[letreg] rule generally."""

import pytest

from repro.core import InferenceConfig, SubtypingMode, infer_source
from repro.lang import target as T
from tests.conftest import infer_and_check

PAIR = """
class Pair extends Object {
  Object fst;
  Object snd;
  void setSnd(Object o) { snd = o; }
}
"""

FIG4 = PAIR + """
Pair build() {
  Pair p4 = new Pair(null, null);
  Pair p3 = new Pair(p4, null);
  Pair p2 = new Pair(null, p4);
  Pair p1 = new Pair(p2, null);
  p1.setSnd(p3);
  p2
}
"""


def _letregs(expr):
    return [n for n in T.twalk(expr) if isinstance(n, T.TLetreg)]


def _news(expr):
    return {n.args and None or n.class_name: n for n in T.twalk(expr) if isinstance(n, T.TNew)}


def _decl_types(expr):
    out = {}
    for node in T.twalk(expr):
        if isinstance(node, T.TBlock):
            for s in node.stmts:
                if isinstance(s, T.TLocalDecl):
                    out[s.name] = s.decl_type
    return out


class TestFig4(object):
    @pytest.fixture(scope="class")
    def result(self):
        return infer_and_check(FIG4, mode=SubtypingMode.OBJECT)

    def test_one_localised_region(self, result):
        assert result.localized_regions["build"] == 1

    def test_p1_and_p3_share_the_local_region(self, result):
        body = result.target.static_named("build").body
        letregs = _letregs(body)
        assert len(letregs) == 1
        local = letregs[0].regions[0]
        decls = _decl_types(body)
        assert decls["p1"].regions[0] == local
        assert decls["p3"].regions[0] == local

    def test_result_p2_escapes(self, result):
        """p2 is returned: its regions are the method's formals, not local."""
        body = result.target.static_named("build").body
        local = _letregs(body)[0].regions[0]
        decls = _decl_types(body)
        assert local not in decls["p2"].regions
        scheme = result.schemes["build"]
        assert set(decls["p2"].regions) <= set(scheme.region_params)

    def test_p4_escapes_through_p2(self, result):
        """p4 is stored in p2.snd, so it must not be in the local region."""
        body = result.target.static_named("build").body
        local = _letregs(body)[0].regions[0]
        decls = _decl_types(body)
        assert local not in decls["p4"].regions


class TestLocalisationBasics(object):
    def test_dead_temporary_is_localised(self):
        src = PAIR + """
        int f() {
          Pair t = new Pair(null, null);
          7
        }
        """
        result = infer_and_check(src)
        assert result.localized_regions["f"] == 1

    def test_returned_object_is_not_localised(self):
        src = PAIR + """
        Pair f() { new Pair(null, null) }
        """
        result = infer_and_check(src)
        body = result.target.static_named("f").body
        assert not _letregs(body)

    def test_object_stored_in_parameter_is_not_localised(self):
        src = PAIR + """
        void f(Pair p) { p.setSnd(new Pair(null, null)); }
        """
        result = infer_and_check(src)
        body = result.target.static_named("f").body
        new = next(n for n in T.twalk(body) if isinstance(n, T.TNew))
        bound = set()
        for lr in _letregs(body):
            bound |= set(lr.regions)
        assert new.regions[0] not in bound

    def test_localisation_can_be_disabled(self):
        src = PAIR + """
        int f() {
          Pair t = new Pair(null, null);
          7
        }
        """
        result = infer_source(
            src, InferenceConfig(localize_blocks=False)
        )
        body = result.target.static_named("f").body
        assert not _letregs(body)

    def test_loop_body_gets_its_own_region(self):
        """Per-iteration temporaries live in a letreg inside the loop."""
        src = PAIR + """
        int f(int n) {
          int i = 0;
          while (i < n) {
            Pair t = new Pair(null, null);
            i = i + 1;
          }
          i
        }
        """
        result = infer_and_check(src)
        body = result.target.static_named("f").body
        whiles = [n for n in T.twalk(body) if isinstance(n, T.TWhile)]
        assert whiles
        inner = _letregs(whiles[0].body)
        assert inner, "the loop body should localise its temporary"

    def test_discarded_call_result_is_localised(self):
        src = PAIR + """
        Pair mk() { new Pair(null, null) }
        int f() {
          mk();
          1
        }
        """
        result = infer_and_check(src)
        assert result.localized_regions["f"] >= 1
