"""Tests for the fictitious null region extension (paper Sec 8).

With ``null_fictitious_regions=True`` every null literal is typed at the
null region, which outlives and is outlived by everything -- so nulls
impose no lifetime constraints at all.  This can only *improve* precision
and never breaks checking.
"""

import pytest

from repro.bench import REGJAVA_PROGRAMS
from repro.checking import check_target
from repro.core import InferenceConfig, SubtypingMode, infer_source
from repro.lang import target as T
from repro.regions import NULL_REGION, Outlives, RegionEq, RegionSolver
from repro.runtime import Interpreter

BRANCHY = """
class Box extends Object { Object item; }
Box pick(bool c, Box b) {
  if (c) { (Box) null } else { b }
}
"""


class TestTyping(object):
    def test_nulls_typed_at_null_region(self):
        result = infer_source(
            BRANCHY, InferenceConfig(null_fictitious_regions=True)
        )
        nulls = [
            n
            for m in result.target.all_methods()
            for n in T.twalk(m.body)
            if isinstance(n, T.TNull)
        ]
        assert nulls
        for n in nulls:
            assert all(r.is_null for r in n.type.regions)

    def test_null_atoms_are_dropped(self):
        from repro.regions import Constraint, Region

        r = Region.fresh()
        c = Constraint.of(
            Outlives(r, NULL_REGION),
            Outlives(NULL_REGION, r),
            RegionEq(r, NULL_REGION),
        )
        assert c.is_true

    def test_solver_treats_null_as_wildcard(self):
        from repro.regions import Region

        r = Region.fresh()
        solver = RegionSolver()
        assert solver.entails_outlives(r, NULL_REGION)
        assert solver.entails_outlives(NULL_REGION, r)
        assert solver.same_region(r, NULL_REGION)


class TestPrecision(object):
    def test_null_branch_adds_no_constraints(self):
        """Without the extension the null's fresh regions join the merge
        constraints; with it the branch contributes nothing."""
        base = infer_source(BRANCHY, InferenceConfig(mode=SubtypingMode.OBJECT))
        ext = infer_source(
            BRANCHY,
            InferenceConfig(
                mode=SubtypingMode.OBJECT, null_fictitious_regions=True
            ),
        )

        def pre_size(result):
            return len(result.target.q["pre.pick"].body)

        assert pre_size(ext) <= pre_size(base)


class TestSoundness(object):
    @pytest.mark.parametrize("name", sorted(REGJAVA_PROGRAMS))
    def test_corpus_checks_and_runs(self, name):
        program = REGJAVA_PROGRAMS[name]
        result = infer_source(
            program.source, InferenceConfig(null_fictitious_regions=True)
        )
        assert check_target(result.target).ok
        interp = Interpreter(result.target, check_dangling=True)
        interp.run_static(program.entry, list(program.test_args))

    def test_all_modes(self):
        for mode in (SubtypingMode.NONE, SubtypingMode.OBJECT, SubtypingMode.FIELD):
            result = infer_source(
                BRANCHY,
                InferenceConfig(mode=mode, null_fictitious_regions=True),
            )
            assert check_target(result.target, mode=mode.value).ok
