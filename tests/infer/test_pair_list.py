"""Golden tests against the paper's Fig 2: the Pair and List classes.

These check the *semantic content* of the inferred annotations (which
constraints are entailed, which regions coincide), not the display names.
"""

import pytest

from repro.core import InferenceConfig, SubtypingMode, infer_source
from repro.regions import Outlives, RegionEq, RegionSolver
from tests.conftest import LIST_SOURCE, PAIR_SOURCE, infer_and_check


@pytest.fixture(scope="module")
def pair():
    return infer_and_check(PAIR_SOURCE, mode=SubtypingMode.OBJECT)


@pytest.fixture(scope="module")
def lst():
    return infer_and_check(LIST_SOURCE, mode=SubtypingMode.OBJECT)


class TestPairClass(object):
    def test_three_region_parameters(self, pair):
        assert pair.annotations["Pair"].arity == 3

    def test_fields_get_distinct_regions(self, pair):
        anno = pair.annotations["Pair"]
        fst = anno.own_field_types["fst"]
        snd = anno.own_field_types["snd"]
        assert fst.regions != snd.regions

    def test_invariant_is_no_dangling(self, pair):
        """inv.Pair<r1,r2,r3> = r2 >= r1 /\\ r3 >= r1."""
        anno = pair.annotations["Pair"]
        r1, r2, r3 = anno.regions
        inv = pair.target.q[anno.inv].body
        solver = RegionSolver(inv)
        assert solver.entails_outlives(r2, r1)
        assert solver.entails_outlives(r3, r1)
        assert not solver.entails_outlives(r2, r3)
        assert not solver.same_region(r2, r3)

    def test_getfst_pre(self, pair):
        """pre.Pair.getFst<r1,r2,r3,r4> = r2 >= r4."""
        anno = pair.annotations["Pair"]
        scheme = pair.schemes["Pair.getFst"]
        (r4,) = scheme.region_params
        r2 = anno.regions[1]
        pre = pair.target.q[scheme.pre].body
        solver = RegionSolver(pre)
        assert solver.entails_outlives(r2, r4)
        assert len(pre) == 1

    def test_setsnd_pre(self, pair):
        """pre.Pair.setSnd<r1,r2,r3,r4> = r4 >= r3."""
        anno = pair.annotations["Pair"]
        scheme = pair.schemes["Pair.setSnd"]
        (r4,) = scheme.region_params
        r3 = anno.regions[2]
        solver = RegionSolver(pair.target.q[scheme.pre].body)
        assert solver.entails_outlives(r4, r3)

    def test_clonerev_pre(self, pair):
        """pre.Pair.cloneRev<r1..r3,r4..r6> = r2 >= r6 /\\ r3 >= r5."""
        anno = pair.annotations["Pair"]
        scheme = pair.schemes["Pair.cloneRev"]
        r4, r5, r6 = scheme.region_params
        r2, r3 = anno.regions[1], anno.regions[2]
        solver = RegionSolver(pair.target.q[scheme.pre].body)
        assert solver.entails_outlives(r2, r6)
        assert solver.entails_outlives(r3, r5)
        assert not solver.entails_outlives(r2, r5)

    def test_swap_pre_is_field_equality(self, pair):
        """pre.Pair.swap<r1,r2,r3> = (r2 = r3)."""
        anno = pair.annotations["Pair"]
        scheme = pair.schemes["Pair.swap"]
        assert scheme.region_params == ()
        r2, r3 = anno.regions[1], anno.regions[2]
        solver = RegionSolver(pair.target.q[scheme.pre].body)
        assert solver.same_region(r2, r3)

    def test_swap_constraint_stays_on_method_not_class(self, pair):
        """Only objects calling swap need r2=r3 (annotation guideline 2)."""
        anno = pair.annotations["Pair"]
        r2, r3 = anno.regions[1], anno.regions[2]
        inv_solver = RegionSolver(pair.target.q[anno.inv].body)
        assert not inv_solver.same_region(r2, r3)


class TestListClass(object):
    def test_three_region_parameters(self, lst):
        assert lst.annotations["List"].arity == 3

    def test_recursive_field_layout(self, lst):
        """next has type List<r3, r2, r3> where r3 is the recursion region."""
        anno = lst.annotations["List"]
        r1, r2, r3 = anno.regions
        assert anno.rec_region == r3
        nxt = anno.own_field_types["next"]
        assert nxt.regions == (r3, r2, r3)
        value = anno.own_field_types["value"]
        assert value.regions == (r2,)

    def test_invariant(self, lst):
        """inv.List = r3 >= r1 /\\ r2 >= r3 /\\ r2 >= r1."""
        anno = lst.annotations["List"]
        r1, r2, r3 = anno.regions
        solver = RegionSolver(lst.target.q[anno.inv].body)
        assert solver.entails_outlives(r3, r1)
        assert solver.entails_outlives(r2, r3)
        assert solver.entails_outlives(r2, r1)
        assert not solver.entails_outlives(r3, r2)

    def test_getvalue_pre(self, lst):
        """pre.List.getValue<r1,r2,r3,r4> = r2 >= r4."""
        anno = lst.annotations["List"]
        scheme = lst.schemes["List.getValue"]
        (r4,) = scheme.region_params
        solver = RegionSolver(lst.target.q[scheme.pre].body)
        assert solver.entails_outlives(anno.regions[1], r4)

    def test_getnext_pre(self, lst):
        """pre.List.getNext<..> = r5=r2 /\\ r6=r3 (Fig 2(b), verbatim).

        The additional object-subtyping fact r3 >= r4 is recoverable from
        the result type's class invariant, so (like the paper) it is elided
        from the displayed precondition but still entailed with it.
        """
        anno = lst.annotations["List"]
        scheme = lst.schemes["List.getNext"]
        r4, r5, r6 = scheme.region_params
        r2, r3 = anno.regions[1], anno.regions[2]
        pre = lst.target.q[scheme.pre].body
        solver = RegionSolver(pre)
        assert solver.same_region(r5, r2)
        assert solver.same_region(r6, r3)
        ret_inv = lst.target.q[anno.inv].instantiate([r4, r5, r6])
        full = RegionSolver(pre.conj(ret_inv))
        assert full.entails_outlives(r3, r4)

    def test_setnext_pre(self, lst):
        """pre.List.setNext<..>: r5=r2 /\\ r6=r3 /\\ r4 >= r3.

        Fig 2(b) shows ``r4=r6``; with object subtyping at the store the
        outlives form ``r4 >= r6(=r3)`` is sufficient (and strictly more
        precise), which is what our engine infers and the checker accepts.
        """
        anno = lst.annotations["List"]
        scheme = lst.schemes["List.setNext"]
        r4, r5, r6 = scheme.region_params
        r2, r3 = anno.regions[1], anno.regions[2]
        solver = RegionSolver(lst.target.q[scheme.pre].body)
        assert solver.same_region(r5, r2)
        assert solver.same_region(r6, r3)
        assert solver.entails_outlives(r4, r3)


class TestModes(object):
    def test_none_mode_coalesces_getfst(self):
        """Without subtyping, getFst's result region is *equal* to r2."""
        result = infer_and_check(PAIR_SOURCE, mode=SubtypingMode.NONE)
        anno = result.annotations["Pair"]
        scheme = result.schemes["Pair.getFst"]
        (r4,) = scheme.region_params
        solver = RegionSolver(result.target.q[scheme.pre].body)
        assert solver.same_region(anno.regions[1], r4)

    def test_field_mode_on_pair_matches_object_mode(self):
        """Pair has no recursive fields: field mode degenerates to object."""
        obj = infer_and_check(PAIR_SOURCE, mode=SubtypingMode.OBJECT)
        fld = infer_and_check(PAIR_SOURCE, mode=SubtypingMode.FIELD)
        for name in ("Pair.getFst", "Pair.setSnd", "Pair.swap"):
            b1 = obj.target.q[obj.schemes[name].pre].body
            b2 = fld.target.q[fld.schemes[name].pre].body
            assert len(b1) == len(b2)
