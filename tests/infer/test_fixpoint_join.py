"""Golden tests against the paper's Fig 6: region-polymorphic recursion.

``pre.join<r1..r9>`` must close to exactly ``r2 >= r8 /\\ r5 >= r8``
(value regions of both lists outlive the result's value region), reached
after two Kleene iterations; the recursive call must be instantiated
region-polymorphically with the caller's parameters swapped.
"""

import pytest

from repro.core import InferenceConfig, SubtypingMode, infer_source
from repro.lang import target as T
from repro.regions import RegionSolver
from tests.conftest import JOIN_SOURCE, infer_and_check


@pytest.fixture(scope="module")
def result():
    return infer_and_check(JOIN_SOURCE, mode=SubtypingMode.OBJECT)


def _param_regions(result):
    scheme = result.schemes["join"]
    xs = scheme.region_params[0:3]
    ys = scheme.region_params[3:6]
    ret = scheme.region_params[6:9]
    return xs, ys, ret


class TestClosedForm(object):
    def test_exactly_the_papers_fixed_point(self, result):
        xs, ys, ret = _param_regions(result)
        pre = result.target.q["pre.join"].body
        solver = RegionSolver(pre)
        # r2 >= r8: xs's value region outlives the result's value region
        assert solver.entails_outlives(xs[1], ret[1])
        # r5 >= r8: ys's value region too (discovered by iteration 2)
        assert solver.entails_outlives(ys[1], ret[1])
        # and nothing relates the *object* regions
        assert not solver.entails_outlives(xs[0], ret[0])
        assert not solver.entails_outlives(ys[0], ret[0])
        assert not solver.same_region(xs[0], ys[0])

    def test_pre_is_closed(self, result):
        assert result.target.q["pre.join"].is_closed

    def test_two_iterations(self, result):
        iters = [
            n for scc, n in result.fixpoint_iterations.items() if "join" in scc
        ]
        assert iters and iters[0] == 2


class TestRecursiveCallSites(object):
    def test_swapped_instantiation(self, result):
        """The tail call join(ys, xs) instantiates with the lists swapped."""
        xs, ys, ret = _param_regions(result)
        body = result.target.static_named("join").body
        calls = [
            n
            for n in T.twalk(body)
            if isinstance(n, T.TCall) and n.method_name == "join"
        ]
        assert len(calls) == 2
        swapped = calls[0]  # the join(ys, xs) in the null branch
        assert swapped.region_args[0:3] == tuple(ys)
        assert swapped.region_args[3:6] == tuple(xs)
        assert swapped.region_args[6:9] == tuple(ret)

    def test_region_polymorphism_keeps_params_distinct(self, result):
        """Each recursive call has a different region instantiation from
        its caller (the hallmark of polymorphic recursion)."""
        xs, ys, ret = _param_regions(result)
        body = result.target.static_named("join").body
        calls = [
            n
            for n in T.twalk(body)
            if isinstance(n, T.TCall) and n.method_name == "join"
        ]
        for call in calls:
            assert tuple(call.region_args) != tuple(result.schemes["join"].region_params)


class TestMonomorphicAblation(object):
    def test_monomorphic_recursion_coalesces_lists(self):
        config = InferenceConfig(
            mode=SubtypingMode.OBJECT, polymorphic_recursion=False
        )
        result = infer_source(JOIN_SOURCE, config)
        scheme = result.schemes["join"]
        xs = scheme.region_params[0:3]
        ys = scheme.region_params[3:6]
        pre = result.target.q["pre.join"].body
        solver = RegionSolver(pre)
        # the swap join(ys, xs) forces the two parameter vectors together
        assert any(solver.same_region(a, b) for a, b in zip(xs, ys))

    def test_polymorphic_is_strictly_more_precise(self, result):
        config = InferenceConfig(
            mode=SubtypingMode.OBJECT, polymorphic_recursion=False
        )
        mono = infer_source(JOIN_SOURCE, config)
        poly_pre = result.target.q["pre.join"].body
        mono_pre = mono.target.q["pre.join"].body

        # every polymorphic consequence over shared vocabulary also holds
        # monomorphically (they share no Region objects, so compare by
        # counting forced identifications instead)
        def merged_pairs(res):
            scheme = res.schemes["join"]
            solver = RegionSolver(res.target.q["pre.join"].body)
            params = scheme.region_params
            return sum(
                1
                for i in range(len(params))
                for j in range(i + 1, len(params))
                if solver.same_region(params[i], params[j])
            )

        assert merged_pairs(result) < merged_pairs(mono)
