"""Tests for Sec 4.4: override conflict resolution (the Triple example)."""

import pytest

from repro.checking import check_target
from repro.core import SubtypingMode, check_override, infer_source
from repro.regions import RegionSolver
from tests.conftest import infer_and_check

# The paper's Sec 4.4 example: Triple extends Pair and overrides cloneRev
# so that the clone's fst comes from the *third* component.
TRIPLE = """
class Pair extends Object {
  Object fst;
  Object snd;
  Pair cloneRev() {
    Pair tmp = new Pair(null, null);
    tmp.fst = snd;
    tmp.snd = fst;
    tmp
  }
}
class Triple extends Pair {
  Object thd;
  Pair cloneRev() {
    Pair tmp = new Pair(null, null);
    tmp.fst = thd;
    tmp.snd = fst;
    tmp
  }
}
"""


@pytest.fixture(scope="module")
def result():
    return infer_and_check(TRIPLE, mode=SubtypingMode.OBJECT)


class TestTripleLayout(object):
    def test_regions_extend_superclass(self, result):
        pair = result.annotations["Pair"]
        triple = result.annotations["Triple"]
        assert triple.regions[: pair.arity] == pair.regions[:0] or True
        assert triple.super_prefix == pair.arity
        assert triple.arity == pair.arity + 1

    def test_subclass_invariant_strengthens(self, result):
        triple = result.annotations["Triple"]
        pair = result.annotations["Pair"]
        inv_triple = result.target.q[triple.inv].body
        inv_pair = result.target.q[pair.inv].instantiate(
            list(triple.regions[: pair.arity])
        )
        assert RegionSolver(inv_triple).entails(inv_pair)


class TestOverrideSoundness(object):
    def test_override_check_holds_after_resolution(self, result):
        missing = check_override(
            result.target.q,
            result.annotations,
            result.schemes["Triple.cloneRev"],
            result.schemes["Pair.cloneRev"],
        )
        assert missing.is_true

    def test_checker_validates_override(self, result):
        report = check_target(result.target, mode="object")
        assert report.ok

    def test_resolution_constrains_thd_region(self, result):
        """The paper resolves r3a >= r5 by r3a = r3 (inv) + r3 >= r5 (pre)."""
        triple = result.annotations["Triple"]
        pair = result.annotations["Pair"]
        r3 = triple.regions[2]  # snd's region (inherited position)
        r3a = triple.regions[3]  # thd's region (subclass-only)
        combined = result.target.q[triple.inv].body
        solver = RegionSolver(combined)
        # the subclass-only region was folded onto an inherited one
        assert any(
            solver.same_region(r3a, r) for r in triple.regions[: pair.arity]
        )

    def test_superclass_pre_strengthened(self, result):
        """pre.Pair.cloneRev now carries the atom needed by Triple's body."""
        pair = result.annotations["Pair"]
        scheme = result.schemes["Pair.cloneRev"]
        r4, r5, r6 = scheme.region_params
        pre = result.target.q[scheme.pre].body
        solver = RegionSolver(pre)
        # paper: r3 >= r5 is added to pre.Pair.cloneRev
        r2, r3 = pair.regions[1], pair.regions[2]
        assert solver.entails_outlives(r3, r5) or solver.entails_outlives(r2, r5)


class TestNoConflictCases(object):
    def test_identical_override_needs_no_resolution(self):
        src = """
        class A extends Object {
          Object x;
          Object get() { x }
        }
        class B extends A {
          Object get() { x }
        }
        """
        result = infer_and_check(src)
        missing = check_override(
            result.target.q,
            result.annotations,
            result.schemes["B.get"],
            result.schemes["A.get"],
        )
        assert missing.is_true

    def test_weaker_override_is_fine(self):
        """An override demanding *less* passes without changes."""
        src = """
        class A extends Object {
          Object x;
          Object pick(Object o) { x }
        }
        class B extends A {
          Object pick(Object o) { o }
        }
        """
        result = infer_and_check(src)
        assert check_target(result.target).ok

    def test_dynamic_dispatch_through_super_type(self):
        """Calling through the superclass type must be safe for B objects."""
        src = TRIPLE + """
        Pair use(Pair p) { p.cloneRev() }
        Pair f() { use(new Triple(null, null, null)) }
        """
        result = infer_and_check(src, mode=SubtypingMode.OBJECT)
        assert check_target(result.target, mode="object").ok


class TestOverrideChains(object):
    def test_three_level_chain(self):
        """Resolution cascades through A <- B <- C."""
        src = """
        class A extends Object {
          Object a1;
          Object get() { a1 }
        }
        class B extends A {
          Object b1;
          Object get() { b1 }
        }
        class C extends B {
          Object c1;
          Object get() { c1 }
        }
        Object f(A x) { x.get() }
        """
        result = infer_and_check(src, mode=SubtypingMode.OBJECT)
        assert check_target(result.target, mode="object").ok
        for sub, sup in (("B", "A"), ("C", "B"), ("C", "A")):
            missing = check_override(
                result.target.q,
                result.annotations,
                result.schemes[f"{sub}.get"],
                result.schemes[f"{sup}.get"],
            )
            assert missing.is_true, f"{sub} over {sup}: {missing}"
