"""Golden tests against the paper's Fig 5: cyclic structures share a region."""

import pytest

from repro.core import SubtypingMode
from repro.lang import target as T
from repro.regions import RegionSolver
from tests.conftest import infer_and_check

PAIR = """
class Pair extends Object {
  Object fst;
  Object snd;
  void setSnd(Object o) { snd = o; }
}
"""

FIG5 = PAIR + """
Pair cyc() {
  Pair p1 = new Pair(null, null);
  Pair p2 = new Pair(p1, null);
  p1.setSnd(p2);
  p2
}
"""


def _decl_types(expr):
    out = {}
    for node in T.twalk(expr):
        if isinstance(node, T.TBlock):
            for s in node.stmts:
                if isinstance(s, T.TLocalDecl):
                    out[s.name] = s.decl_type
    return out


class TestFig5(object):
    @pytest.fixture(scope="class")
    def result(self):
        return infer_and_check(FIG5, mode=SubtypingMode.OBJECT)

    def test_cycle_members_share_object_region(self, result):
        decls = _decl_types(result.target.static_named("cyc").body)
        assert decls["p1"].regions[0] == decls["p2"].regions[0]

    def test_no_localisation(self, result):
        """All declared regions escape (Fig 5: no letreg introduced)."""
        assert result.localized_regions["cyc"] == 0

    def test_pre_still_well_formed(self, result):
        scheme = result.schemes["cyc"]
        pre = result.target.q[scheme.pre].body
        RegionSolver(pre)  # no pred atoms, no crash


class TestLargerCycles(object):
    def test_three_cycle(self):
        src = PAIR + """
        Pair ring() {
          Pair a = new Pair(null, null);
          Pair b = new Pair(a, null);
          Pair c = new Pair(b, null);
          a.setSnd(c);
          a
        }
        """
        result = infer_and_check(src, mode=SubtypingMode.OBJECT)
        decls = _decl_types(result.target.static_named("ring").body)
        r = decls["a"].regions[0]
        assert decls["b"].regions[0] == r
        assert decls["c"].regions[0] == r

    def test_self_loop(self):
        src = PAIR + """
        Pair knot() {
          Pair a = new Pair(null, null);
          a.setSnd(a);
          a
        }
        """
        result = infer_and_check(src, mode=SubtypingMode.OBJECT)
        decls = _decl_types(result.target.static_named("knot").body)
        a_t = decls["a"]
        # the self reference forces the snd-component region onto the
        # object's own region
        assert a_t.regions[2] == a_t.regions[0]

    def test_localised_cycle(self):
        """A dead cyclic structure is still localised (as one region)."""
        src = PAIR + """
        int f() {
          Pair a = new Pair(null, null);
          Pair b = new Pair(a, null);
          a.setSnd(b);
          3
        }
        """
        result = infer_and_check(src, mode=SubtypingMode.OBJECT)
        assert result.localized_regions["f"] == 1
