"""Tests for Sec 5: downcast safety (Fig 7 flow analysis + both techniques)."""

import pytest

from repro.checking import check_target
from repro.core import DowncastStrategy, InferenceConfig, infer_source
from repro.core.downcast import DowncastAnalysis
from repro.frontend import parse_program
from repro.lang import target as T
from repro.regions import RegionSolver
from repro.typing import check_program

FIG7 = """
class A extends Object { Object fa; }
class B extends A { Object fb; }
class C extends A { Object fc; }
class D extends C { Object fd; }
class E extends A { Object fe1; Object fe2; Object fe3; }

bool frag(int which) {
  A a = (A) null;
  if (which == 0) { a = new B(null, null); }
  else {
    if (which == 1) { a = new C(null, null); }
    else { a = new E(null, null, null, null); }
  }
  B b = (B) a;
  C c = (C) a;
  D d = (D) c;
  d.fd == null
}
"""


@pytest.fixture(scope="module")
def analysis():
    program = parse_program(FIG7)
    table = check_program(program)
    return DowncastAnalysis(program, table)


class TestFlowAnalysis(object):
    def test_downcast_sets_match_paper(self, analysis):
        """a[{B,C,D}] and c[{D}] after both closures."""
        sets = analysis.downcast_sets()
        assert sets[("var", "frag", "a")] == frozenset({"B", "C", "D"})
        assert sets[("var", "frag", "c")] == frozenset({"D"})

    def test_allocation_sites_inherit_sets(self, analysis):
        """The closure reaches the new sites lb, lc, le."""
        sets = analysis.downcast_sets()
        site_sets = [v for k, v in sets.items() if k[0] == "new"]
        assert len(site_sets) == 3
        assert all(s == frozenset({"B", "C", "D"}) for s in site_sets)

    def test_doomed_site(self, analysis):
        """le allocates an E: unrelated to B/C/D, every downcast fails."""
        plan = analysis.build_plan()
        program = parse_program(FIG7)
        # exactly one doomed site, and it is the E allocation
        assert len(plan.doomed_sites) == 1

    def test_pad_counts(self, analysis):
        """a needs 2 pads (to reach D's arity), c needs 1 (paper Sec 5)."""
        plan = analysis.build_plan()
        assert plan.pads_for_var("frag", "a") == 2
        assert plan.pads_for_var("frag", "c") == 1
        assert plan.pads_for_var("frag", "b") == 0

    def test_no_downcasts_means_empty_plan(self):
        src = "class A { } A f() { new A() }"
        program = parse_program(src)
        table = check_program(program)
        plan = DowncastAnalysis(program, table).build_plan()
        assert not plan.pad_counts
        assert not plan.doomed_sites


class TestPaddingTechnique(object):
    @pytest.fixture(scope="class")
    def result(self):
        return infer_source(FIG7, InferenceConfig(downcast=DowncastStrategy.PADDING))

    def test_checks(self, result):
        assert check_target(result.target, downcast="padding").ok

    def test_padded_declaration(self, result):
        body = result.target.static_named("frag").body
        decls = {}
        for node in T.twalk(body):
            if isinstance(node, T.TBlock):
                for s in node.stmts:
                    if isinstance(s, T.TLocalDecl):
                        decls[s.name] = s.decl_type
        assert len(decls["a"].padding) == 2
        assert len(decls["c"].padding) == 1
        assert len(decls["b"].padding) == 0

    def test_downcast_recovers_from_pads(self, result):
        """(D) c reads its fourth region from c's pad (paper: r12=r4)."""
        body = result.target.static_named("frag").body
        decls = {}
        for node in T.twalk(body):
            if isinstance(node, T.TBlock):
                for s in node.stmts:
                    if isinstance(s, T.TLocalDecl):
                        decls[s.name] = s.decl_type
        d_t = decls["d"]
        c_t = decls["c"]
        assert d_t.regions[:3] == c_t.regions
        assert d_t.regions[3] == c_t.padding[0]


class TestFirstRegionTechnique(object):
    @pytest.fixture(scope="class")
    def result(self):
        return infer_source(
            FIG7, InferenceConfig(downcast=DowncastStrategy.FIRST_REGION)
        )

    def test_checks(self, result):
        assert check_target(result.target, downcast="first-region").ok

    def test_recovered_regions_equal_first(self, result):
        body = result.target.static_named("frag").body
        casts = [n for n in T.twalk(body) if isinstance(n, T.TCast)]
        down = [c for c in casts if c.type.name in ("B", "C", "D")]
        assert down
        scheme = result.schemes["frag"]
        pre = result.target.q[scheme.pre].body
        # gather the whole constraint context of the method to decide
        # equalities (everything was localised into the body here)
        for cast in down:
            first = cast.type.regions[0]
            # recovered extras must all coincide with the first region
            inner = cast.expr.type
            k = len(inner.regions)
            solver = RegionSolver(pre)
            for extra in cast.type.regions[k:]:
                assert solver.same_region(extra, first) or extra == first


class TestRejectStrategy(object):
    def test_downcasts_rejected(self):
        from repro.core import InferenceError

        with pytest.raises(InferenceError):
            infer_source(FIG7, InferenceConfig(downcast=DowncastStrategy.REJECT))

    def test_upcast_only_program_accepted(self):
        src = """
        class A { }
        class B extends A { int x; }
        A f() { (A) new B(0) }
        """
        result = infer_source(src, InferenceConfig(downcast=DowncastStrategy.REJECT))
        assert check_target(result.target).ok


class TestDowncastThroughCalls(object):
    def test_flow_through_static_call(self):
        """Downcast sets propagate through parameter passing."""
        src = """
        class A { }
        class B extends A { Object payload; }
        Object open(A boxed) { ((B) boxed).payload }
        Object f() {
          A x = new B(null);
          open(x)
        }
        """
        program = parse_program(src)
        table = check_program(program)
        sets = DowncastAnalysis(program, table).downcast_sets()
        assert sets.get(("var", "open", "boxed")) == frozenset({"B"})
        assert sets.get(("var", "f", "x")) == frozenset({"B"})
        result = infer_source(src, InferenceConfig(downcast=DowncastStrategy.PADDING))
        assert check_target(result.target, downcast="padding").ok

    def test_runtime_failed_downcast_raises(self):
        from repro.runtime import CastFailedError, Interpreter

        src = """
        class A { }
        class B extends A { int x; }
        class C extends A { int y; }
        int f() {
          A a = new C(1);
          ((B) a).x
        }
        """
        result = infer_source(src, InferenceConfig(downcast=DowncastStrategy.PADDING))
        interp = Interpreter(result.target)
        with pytest.raises(CastFailedError):
            interp.run_static("f")
