"""Tests for the inference reporting module."""

import pytest

from repro.analysis import AllocationKind, render_report, summarize
from repro.core import SubtypingMode
from tests.conftest import JOIN_SOURCE, PAIR_SOURCE, infer_and_check


@pytest.fixture(scope="module")
def pair_report():
    return summarize(infer_and_check(PAIR_SOURCE, mode=SubtypingMode.OBJECT))


class TestClassReports(object):
    def test_pair_class(self, pair_report):
        c = pair_report.class_named("Pair")
        assert c.arity == 3
        assert not c.recursive
        assert c.invariant_atoms == 2  # r2 >= r1, r3 >= r1

    def test_recursive_class_flagged(self):
        report = summarize(infer_and_check(JOIN_SOURCE))
        c = report.class_named("List")
        assert c.recursive
        assert c.arity == 3

    def test_missing_class_raises(self, pair_report):
        with pytest.raises(KeyError):
            pair_report.class_named("Nope")


class TestMethodReports(object):
    def test_getfst(self, pair_report):
        m = pair_report.method("Pair.getFst")
        assert m.region_params == 1
        assert m.pre_size == 1
        assert m.pre_outlives == 1

    def test_swap_has_equality(self, pair_report):
        m = pair_report.method("Pair.swap")
        assert m.region_params == 0
        assert m.pre_equalities == 1

    def test_clonerev_allocation_classified(self, pair_report):
        m = pair_report.method("Pair.cloneRev")
        assert len(m.allocations) == 1
        kind = next(iter(m.allocations.values()))
        # the clone escapes through the result: a formal region
        assert kind == AllocationKind.FORMAL

    def test_local_allocation_classified(self):
        src = """
        class Box extends Object { int v; }
        int f() {
          Box t = new Box(1);
          t.v
        }
        """
        report = summarize(infer_and_check(src))
        m = report.method("f")
        assert m.letregs == 1
        assert m.local_allocations == 1

    def test_missing_method_raises(self, pair_report):
        with pytest.raises(KeyError):
            pair_report.method("Pair.nope")


class TestTotals(object):
    def test_totals_aggregate(self, pair_report):
        assert pair_report.total_region_params == sum(
            m.region_params for m in pair_report.methods
        )

    def test_join_letreg_total(self):
        report = summarize(infer_and_check(JOIN_SOURCE, mode=SubtypingMode.OBJECT))
        assert report.total_letregs >= 1


class TestRendering(object):
    def test_render_contains_sections(self, pair_report):
        text = render_report(pair_report)
        assert "classes:" in text
        assert "methods:" in text
        assert "Pair.swap" in text
        assert "totals:" in text

    def test_render_mentions_allocations(self):
        src = """
        class Box extends Object { int v; }
        int f() { Box t = new Box(1); t.v }
        """
        report = summarize(infer_and_check(src))
        assert "letreg" in render_report(report)
