"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main

PROGRAM = """
class Box extends Object { int v; }
int main(int n) {
  int i = 0;
  int acc = 0;
  while (i < n) {
    Box t = new Box(i);
    acc = acc + t.v;
    i = i + 1;
  }
  acc
}
"""


@pytest.fixture()
def source_file(tmp_path):
    path = tmp_path / "prog.cj"
    path.write_text(PROGRAM)
    return str(path)


class TestInfer(object):
    def test_prints_annotated_program(self, source_file, capsys):
        assert main(["infer", source_file]) == 0
        out = capsys.readouterr().out
        assert "letreg" in out
        assert "Box<" in out

    def test_show_q(self, source_file, capsys):
        assert main(["infer", source_file, "--show-q"]) == 0
        out = capsys.readouterr().out
        assert "inv.Box" in out

    def test_mode_flag(self, source_file, capsys):
        assert main(["infer", source_file, "--mode", "none"]) == 0


class TestCheck(object):
    def test_ok(self, source_file, capsys):
        assert main(["check", source_file]) == 0
        assert "OK" in capsys.readouterr().out

    def test_all_modes(self, source_file):
        for mode in ("none", "object", "field"):
            assert main(["check", source_file, "--mode", mode]) == 0

    def test_ablations(self, source_file):
        assert main(["check", source_file, "--monomorphic"]) == 0
        assert main(["check", source_file, "--no-letreg"]) == 0


class TestRun(object):
    def test_runs_and_reports_stats(self, source_file, capsys):
        assert main(["run", source_file, "--args", "10"]) == 0
        out = capsys.readouterr().out
        assert "result: 45" in out
        assert "space-usage ratio" in out

    def test_custom_entry(self, tmp_path, capsys):
        path = tmp_path / "f.cj"
        path.write_text("int double(int n) { 2 * n }")
        assert main(["run", str(path), "--entry", "double", "--args", "21"]) == 0
        assert "result: 42" in capsys.readouterr().out


class TestProfile(object):
    def test_reports_all_three_stages(self, source_file, capsys):
        assert main(["profile", source_file, "--top", "3"]) == 0
        out = capsys.readouterr().out
        for stage in ("parse:", "infer:", "verify:", "total:"):
            assert stage in out
        assert "infer_program" in out  # top-by-cumulative includes the entry

    def test_json_payload_shape(self, source_file, capsys):
        import json

        assert main(["profile", source_file, "--top", "2", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["command"] == "profile"
        assert [s["stage"] for s in payload["stages"]] == [
            "parse", "infer", "verify",
        ]
        for stage in payload["stages"]:
            assert len(stage["top"]) <= 2
            for row in stage["top"]:
                assert row["cumtime_s"] >= row["tottime_s"] - 1e-9
        assert payload["total_seconds"] >= 0

    def test_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["profile", str(tmp_path / "absent.cj")]) == 2


BROKEN = "class Broken extends Object { int"


@pytest.fixture()
def batch_files(tmp_path):
    good1 = tmp_path / "good1.cj"
    good1.write_text(PROGRAM)
    good2 = tmp_path / "good2.cj"
    good2.write_text("int double(int n) { 2 * n }")
    bad = tmp_path / "bad.cj"
    bad.write_text(BROKEN)
    return str(good1), str(good2), str(bad)


class TestBatch(object):
    def test_all_ok(self, batch_files, capsys):
        good1, good2, _ = batch_files
        assert main(["batch", good1, good2]) == 0
        out = capsys.readouterr().out
        assert "2/2 programs inferred" in out

    def test_failure_reports_stage_and_exits_2(self, batch_files, capsys):
        good1, _, bad = batch_files
        assert main(["batch", good1, bad]) == 2
        out = capsys.readouterr().out
        assert "FAILED at parse" in out
        assert "1/2 programs inferred, 1 failed" in out

    def test_json_payload(self, batch_files, capsys):
        import json

        good1, _, bad = batch_files
        assert main(["batch", good1, bad, "--format", "json"]) == 2
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert [p["ok"] for p in payload["programs"]] == [True, False]
        assert payload["programs"][1]["stage"] == "parse"
        assert payload["programs"][1]["diagnostics"][0]["code"] == "parse-error"

    def test_process_backend_and_jobs_flags(self, batch_files, capsys):
        good1, good2, _ = batch_files
        assert main(
            ["batch", good1, good2, "--backend", "process", "--jobs", "2"]
        ) == 0
        assert "2/2 programs inferred" in capsys.readouterr().out

    def test_auto_backend(self, batch_files, capsys):
        good1, good2, _ = batch_files
        assert main(["batch", good1, good2, "--backend", "auto"]) == 0

    def test_missing_file_is_a_per_file_failure(self, batch_files, tmp_path, capsys):
        # an unreadable file must not abort the rest of the batch
        import json

        good1, _, _ = batch_files
        missing = str(tmp_path / "nope.cj")
        assert main(["batch", good1, missing, "--format", "json"]) == 2
        payload = json.loads(capsys.readouterr().out)
        assert [p["ok"] for p in payload["programs"]] == [True, False]
        assert payload["programs"][1]["stage"] == "read"
        assert payload["programs"][1]["diagnostics"][0]["code"] == "io-error"


class TestPoolFlags(object):
    def test_fig9_accepts_backend_and_jobs(self, capsys):
        assert main(["fig9", "--backend", "thread", "--jobs", "2"]) == 0
        assert "Fig 9" in capsys.readouterr().out


class TestWatch(object):
    def test_iterations_zero_exits_after_initial(self, source_file, capsys):
        assert main(["watch", source_file, "--iterations", "0"]) == 0
        out = capsys.readouterr().out
        assert "initial:" in out
        assert "SCCs spliced" in out

    def test_json_payload_shape(self, source_file, capsys):
        import json

        assert main(
            ["watch", source_file, "--iterations", "0", "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["command"] == "watch"
        assert payload["events"][0]["edit"] is False
        assert payload["stats"]["misses"].get("scc.document") == 1

    def test_edit_event_reinfers_incrementally(self, source_file, capsys):
        import json
        import threading
        import time
        from pathlib import Path

        path = Path(source_file)

        def edit_soon():
            time.sleep(0.3)
            path.write_text(path.read_text().replace("t.v", "t.v + 0"))

        editor = threading.Thread(target=edit_soon)
        editor.start()
        try:
            assert main(
                [
                    "watch",
                    source_file,
                    "--iterations",
                    "1",
                    "--interval",
                    "0.05",
                    "--format",
                    "json",
                ]
            ) == 0
        finally:
            editor.join()
        payload = json.loads(capsys.readouterr().out)
        assert [e["edit"] for e in payload["events"]] == [False, True]
        assert payload["stats"]["hits"].get("scc.document") == 1

    def test_parse_failure_on_initial_run_fails(self, tmp_path, capsys):
        bad = tmp_path / "bad.cj"
        bad.write_text("class {")
        assert main(["watch", str(bad), "--iterations", "0"]) != 0
