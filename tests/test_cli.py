"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main

PROGRAM = """
class Box extends Object { int v; }
int main(int n) {
  int i = 0;
  int acc = 0;
  while (i < n) {
    Box t = new Box(i);
    acc = acc + t.v;
    i = i + 1;
  }
  acc
}
"""


@pytest.fixture()
def source_file(tmp_path):
    path = tmp_path / "prog.cj"
    path.write_text(PROGRAM)
    return str(path)


class TestInfer(object):
    def test_prints_annotated_program(self, source_file, capsys):
        assert main(["infer", source_file]) == 0
        out = capsys.readouterr().out
        assert "letreg" in out
        assert "Box<" in out

    def test_show_q(self, source_file, capsys):
        assert main(["infer", source_file, "--show-q"]) == 0
        out = capsys.readouterr().out
        assert "inv.Box" in out

    def test_mode_flag(self, source_file, capsys):
        assert main(["infer", source_file, "--mode", "none"]) == 0


class TestCheck(object):
    def test_ok(self, source_file, capsys):
        assert main(["check", source_file]) == 0
        assert "OK" in capsys.readouterr().out

    def test_all_modes(self, source_file):
        for mode in ("none", "object", "field"):
            assert main(["check", source_file, "--mode", mode]) == 0

    def test_ablations(self, source_file):
        assert main(["check", source_file, "--monomorphic"]) == 0
        assert main(["check", source_file, "--no-letreg"]) == 0


class TestRun(object):
    def test_runs_and_reports_stats(self, source_file, capsys):
        assert main(["run", source_file, "--args", "10"]) == 0
        out = capsys.readouterr().out
        assert "result: 45" in out
        assert "space-usage ratio" in out

    def test_custom_entry(self, tmp_path, capsys):
        path = tmp_path / "f.cj"
        path.write_text("int double(int n) { 2 * n }")
        assert main(["run", str(path), "--entry", "double", "--args", "21"]) == 0
        assert "result: 42" in capsys.readouterr().out
